"""Fair multiplexing of many campaigns over one shared worker pool.

One :class:`Scheduler` owns the service's single worker pool and a set
of active jobs, each wrapped in a
:class:`~repro.campaign.pump.CampaignPump`.  Dispatch is round-robin at
*chunk* granularity: every pass over the rotation hands out at most one
chunk per job, so a tenant's 10,000-seed sweep and another tenant's
4-seed smoke test interleave chunk-for-chunk instead of queueing behind
each other — the small job finishes while the big one is still
running.  Two quotas bound a tenant (API key):

* ``max_active_jobs`` — queued+running jobs; exceeding it rejects the
  submission (HTTP 429) without touching anything already running;
* ``max_inflight_chunks`` — chunks of that tenant's jobs simultaneously
  occupying pool workers; at the cap the tenant's jobs are simply
  skipped in the rotation until a chunk completes.

Durability is delegated to the pieces PRs 5–7 built: every accepted
chunk is journaled by the pump's checkpoint writer before the next one
is handed out, and job status files are atomically replaced
(:mod:`repro.serve.store`), so a SIGKILL at any instant is recoverable:
on restart the scheduler finds non-terminal jobs, rebuilds their pumps
with ``resume=True``, and their final reports come out ``==``-identical
to uninterrupted runs.
"""

from __future__ import annotations

import asyncio
import collections
import pickle
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.campaign.partition import auto_workers
from repro.campaign.pump import CampaignPump, ChunkTask, execute_chunk
from repro.errors import CampaignError, CertificateError, ReproError
from repro.serve.jobspec import JobSpec, build_job
from repro.serve.store import JobStore, ServeJob


class QuotaExceeded(ReproError):
    """A tenant asked for more than its quota allows (HTTP 429)."""


@dataclass(frozen=True)
class TenantQuotas:
    """Per-tenant (per API key) resource bounds."""

    max_inflight_chunks: int = 4
    max_active_jobs: int = 8


@dataclass
class JobRuntime:
    """In-memory companion of one active job: pump, events, counters."""

    job: ServeJob
    pump: Optional[CampaignPump] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    event_added: "asyncio.Event" = field(default_factory=asyncio.Event)
    inflight: int = 0
    use_threads: bool = False

    def progress(self) -> Dict[str, Any]:
        """Chunk/unit progress counters for the status endpoint."""
        if self.pump is None:
            return {}
        return {
            "total_chunks": self.pump.total_chunks,
            "completed_chunks": self.pump.completed_chunks,
            "failed_chunks": self.pump.failed_chunks,
            "in_flight_chunks": self.pump.in_flight,
            "total_units": self.pump.total_units,
            "completed_units": self.pump.completed_units,
        }


class Scheduler:
    """The service's job scheduler: one shared pool, many campaigns.

    Built to run inside one asyncio event loop; all public methods are
    loop-affine (the HTTP handlers run on the same loop).  ``executor``
    selects where chunk bodies run: ``"process"`` (the default; a
    forking :class:`~concurrent.futures.ProcessPoolExecutor` exactly
    like the batch engine) or ``"thread"`` (in-process threads — used
    by tests and as the automatic fallback for unpicklable jobs).
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: Optional[int] = None,
        quotas: Optional[TenantQuotas] = None,
        executor: str = "process",
    ):
        if executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {executor!r}"
            )
        self.store = store
        self.workers = auto_workers(1 << 30) if workers is None else workers
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.quotas = TenantQuotas() if quotas is None else quotas
        self.executor_kind = executor
        self._jobs: Dict[str, JobRuntime] = {}
        self._rotation: Deque[str] = collections.deque()
        self._inflight_total = 0
        self._pool = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._runner: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> int:
        """Recover persisted jobs and start the dispatch loop.

        Returns the number of jobs recovered from the state directory —
        every non-terminal job found on disk is re-queued and will
        resume from its checkpoint journal.
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        recovered = 0
        for job in self.store.recoverable():
            runtime = JobRuntime(
                job=job, events=self.store.read_events(job.id)
            )
            if job.state == "running":
                # The previous process died mid-run; rewind the status
                # so the dispatch loop re-starts (and resumes) it.
                job.state = "queued"
                self.store.save(job)
            self._jobs[job.id] = runtime
            self._rotation.append(job.id)
            self._emit(runtime, {"event": "job-recovered"})
            recovered += 1
        for job in self.store.list_jobs():
            if job.terminal and job.id not in self._jobs:
                self._jobs[job.id] = JobRuntime(
                    job=job, events=self.store.read_events(job.id)
                )
        self._runner = asyncio.create_task(self._run())
        self._wake.set()
        return recovered

    async def stop(self) -> None:
        """Stop dispatching and release the pool.

        Deliberately *not* a drain: in-flight chunk results are
        discarded and job states stay as persisted, so stopping is
        indistinguishable from a crash — the restart path (resume from
        journals) is the single recovery mechanism and is exercised by
        every shutdown.
        """
        self._stopping = True
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except (asyncio.CancelledError, Exception):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None

    # ------------------------------------------------------------------
    # Public API (called by the HTTP handlers, same loop)

    def submit(self, tenant: str, spec: JobSpec) -> ServeJob:
        """Accept a job for ``tenant``, enforcing its active-job quota."""
        active = sum(
            1 for runtime in self._jobs.values()
            if runtime.job.tenant == tenant and not runtime.job.terminal
        )
        if active >= self.quotas.max_active_jobs:
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {active} active job(s); "
                f"quota is {self.quotas.max_active_jobs}"
            )
        job = self.store.create(tenant, spec)
        runtime = JobRuntime(job=job)
        self._jobs[job.id] = runtime
        self._rotation.append(job.id)
        self._emit(runtime, {"event": "job-queued", "tenant": tenant})
        if self._wake is not None:
            self._wake.set()
        return job

    def get(self, job_id: str) -> Optional[JobRuntime]:
        """The runtime for ``job_id``, or ``None`` if unknown."""
        return self._jobs.get(job_id)

    def runtimes(self) -> List[JobRuntime]:
        """All known job runtimes, oldest submission first."""
        return sorted(
            self._jobs.values(),
            key=lambda runtime: (runtime.job.created_at, runtime.job.id),
        )

    def cancel(self, job_id: str) -> Optional[ServeJob]:
        """Cancel a queued or running job.

        Returns the job (now terminal), or ``None`` if unknown.
        Raises :class:`QuotaExceeded` never; cancelling an
        already-terminal job is a no-op that returns the job as-is.
        Chunks already handed to the pool finish and are discarded;
        running jobs elsewhere are untouched.
        """
        runtime = self._jobs.get(job_id)
        if runtime is None:
            return None
        if runtime.job.terminal:
            return runtime.job
        self.store.transition(runtime.job, "cancelled")
        self._emit(runtime, {"event": "job-cancelled"})
        if self._wake is not None:
            self._wake.set()
        return runtime.job

    def tenant_inflight(self, tenant: str) -> int:
        """Chunks of ``tenant``'s jobs currently occupying workers."""
        return sum(
            runtime.inflight for runtime in self._jobs.values()
            if runtime.job.tenant == tenant
        )

    # ------------------------------------------------------------------
    # Dispatch loop

    async def _run(self) -> None:
        """The dispatch loop: start queued jobs, hand out ready chunks."""
        assert self._wake is not None
        while True:
            self._start_queued()
            self._dispatch()
            timeout = self._backoff_timeout()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    def _start_queued(self) -> None:
        """Build pumps for queued jobs and move them to ``running``."""
        for runtime in list(self._jobs.values()):
            if runtime.job.state != "queued" or runtime.pump is not None:
                continue
            job_id = runtime.job.id
            journal = self.store.journal_path(job_id)
            try:
                campaign_job = build_job(runtime.job.spec)
                runtime.pump = CampaignPump(
                    campaign_job,
                    workers=self.workers,
                    chunk_size=runtime.job.spec.chunk_size,
                    checkpoint=journal,
                    resume=True,
                    verify_certificates=(
                        runtime.job.spec.verify_certificates
                    ),
                )
            except ReproError as error:
                self.store.transition(
                    runtime.job, "failed",
                    error=f"{type(error).__name__}: {error}",
                )
                self._emit(runtime, {
                    "event": "job-failed", "error": str(error),
                })
                continue
            try:
                pickle.dumps(runtime.pump.job)
            except Exception:
                # Mirrors the batch engine's in-process fallback: a job
                # that cannot cross a process boundary runs on threads.
                runtime.use_threads = True
            self.store.transition(runtime.job, "running")
            self._emit(runtime, {
                "event": "job-started",
                "total_chunks": runtime.pump.total_chunks,
                "resumed_chunks": len(runtime.pump.prepared.completed),
            })

    def _dispatch(self) -> None:
        """Round-robin: at most one chunk per job per rotation pass."""
        progressed = True
        while progressed and self._inflight_total < self.workers:
            progressed = False
            for _ in range(len(self._rotation)):
                if self._inflight_total >= self.workers:
                    break
                job_id = self._rotation[0]
                self._rotation.rotate(-1)
                runtime = self._jobs.get(job_id)
                if (
                    runtime is None
                    or runtime.job.terminal
                    or runtime.pump is None
                ):
                    if runtime is None or runtime.job.terminal:
                        try:
                            self._rotation.remove(job_id)
                        except ValueError:
                            pass
                    continue
                if runtime.job.state != "running":
                    continue
                tenant = runtime.job.tenant
                if (
                    self.tenant_inflight(tenant)
                    >= self.quotas.max_inflight_chunks
                ):
                    continue
                task = runtime.pump.next_chunk()
                if task is None:
                    self._maybe_finish(runtime)
                    continue
                self._spawn(runtime, task)
                progressed = True

    def _backoff_timeout(self) -> Optional[float]:
        """Seconds until the earliest queued retry becomes ready."""
        deadlines = []
        now = time.monotonic()
        for runtime in self._jobs.values():
            if runtime.pump is None or runtime.job.terminal:
                continue
            ready_at = runtime.pump.next_ready_at()
            if ready_at is not None:
                deadlines.append(max(0.0, ready_at - now))
        return min(deadlines) if deadlines else None

    def _executor_for(self, runtime: JobRuntime):
        """The executor this job's chunks run on (pool or thread fallback)."""
        if self.executor_kind == "thread" or runtime.use_threads:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="serve-chunk",
                )
            return self._thread_pool
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            from repro.campaign.engine import _pool_context

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context(),
            )
        return self._pool

    def _spawn(self, runtime: JobRuntime, task: ChunkTask) -> None:
        """Hand one chunk attempt to the pool and track it."""
        runtime.inflight += 1
        self._inflight_total += 1
        asyncio.create_task(self._run_chunk(runtime, task))

    async def _run_chunk(self, runtime: JobRuntime, task: ChunkTask) -> None:
        """Await one chunk attempt and feed the outcome back to the pump."""
        assert self._loop is not None and runtime.pump is not None
        pump = runtime.pump
        try:
            try:
                executor = self._executor_for(runtime)
                _index, report, stats = await self._loop.run_in_executor(
                    executor, execute_chunk, pump.job, task.index,
                    task.start, task.stop, task.attempt,
                )
            except asyncio.CancelledError:
                raise
            except BrokenExecutor as error:
                # The pool died under us (e.g. a worker was killed).
                # Rebuild it and treat the attempt as retryable.
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
                self._record_failure(runtime, task, error)
            except Exception as error:
                self._record_failure(runtime, task, error)
            else:
                if runtime.job.terminal:
                    return  # cancelled while in flight: discard
                accepted = pump.complete(task, report, stats)
                if accepted:
                    self._emit(runtime, {
                        "event": "chunk",
                        "index": task.index,
                        "start": task.start,
                        "stop": task.stop,
                        "attempt": task.attempt,
                        "wall_seconds": stats.wall_seconds,
                        "cpu_seconds": stats.cpu_seconds,
                        "worker": stats.worker,
                        "completed_chunks": pump.completed_chunks,
                        "total_chunks": pump.total_chunks,
                    })
                else:
                    self._emit_retry_or_failure(runtime, task,
                                                "certificate rejected")
        finally:
            runtime.inflight -= 1
            self._inflight_total -= 1
            self._maybe_finish(runtime)
            if self._wake is not None:
                self._wake.set()

    def _record_failure(
        self, runtime: JobRuntime, task: ChunkTask, error: BaseException
    ) -> None:
        """Route a chunk attempt failure through the pump's retry policy."""
        if runtime.job.terminal or runtime.pump is None:
            return
        runtime.pump.fail(task, error)
        self._emit_retry_or_failure(
            runtime, task, f"{type(error).__name__}: {error}"
        )

    def _emit_retry_or_failure(
        self, runtime: JobRuntime, task: ChunkTask, detail: str
    ) -> None:
        """Emit chunk-retry (budget left) or chunk-failed (permanent)."""
        pump = runtime.pump
        permanent = (
            pump is not None and task.index in pump.outcomes.failures
        )
        self._emit(runtime, {
            "event": "chunk-failed" if permanent else "chunk-retry",
            "index": task.index,
            "attempt": task.attempt,
            "error": detail,
        })

    def _maybe_finish(self, runtime: JobRuntime) -> None:
        """Finalize a job whose chunks have all settled."""
        if (
            runtime.job.state != "running"
            or runtime.pump is None
            or runtime.inflight > 0
            or not runtime.pump.done
        ):
            return
        try:
            result = runtime.pump.finalize(mode="service")
        except (CertificateError, CampaignError) as error:
            self.store.transition(
                runtime.job, "failed",
                error=f"{type(error).__name__}: {error}",
            )
            self._emit(runtime, {
                "event": "job-failed", "error": str(error),
            })
            return
        self.store.save_result(runtime.job, result)
        self.store.transition(runtime.job, "done")
        self._emit(runtime, {
            "event": "job-done",
            "complete": result.complete,
            "summary": result.report.summary(),
            "telemetry": result.telemetry.summary(),
            "missing": list(result.missing),
        })

    # ------------------------------------------------------------------
    # Events

    def _emit(self, runtime: JobRuntime, event: Dict[str, Any]) -> None:
        """Append an event to the job's log and wake stream listeners."""
        event = dict(event)
        event.setdefault("job", runtime.job.id)
        event["seq"] = len(runtime.events)
        event["time"] = time.time()
        runtime.events.append(event)
        try:
            self.store.append_event(runtime.job.id, event)
        except OSError:
            pass  # event log is advisory; never fail the job for it
        waiters = runtime.event_added
        runtime.event_added = asyncio.Event()
        waiters.set()
