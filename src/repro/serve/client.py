"""A stdlib HTTP client for the campaign service.

Used by the test suite, the CI drill, and ``tools/serve_client.py``;
kept in the package (rather than only in ``tools/``) so anything that
imports :mod:`repro.serve` can talk to a server without hand-rolling
``http.client`` calls.  Every method maps 1:1 onto a route; non-2xx
responses raise :class:`ServeClientError` carrying the server's status
and error message.
"""

from __future__ import annotations

import base64
import http.client
import json
import pickle
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.serve.jobspec import JobSpec


class ServeClientError(ReproError):
    """A request failed; carries the HTTP status the server sent."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talks to one campaign server at ``http://host:port``."""

    def __init__(self, host: str, port: int, *,
                 api_key: Optional[str] = None, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing

    def _headers(self) -> Dict[str, str]:
        """Common request headers (tenant key if configured)."""
        headers = {"Accept": "application/json"}
        if self.api_key is not None:
            headers["X-Api-Key"] = self.api_key
        return headers

    def _request(self, method: str, path: str,
                 body: Optional[Any] = None) -> Any:
        """One request/response cycle, JSON in and out."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = self._headers()
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                data = None
            if response.status >= 400:
                message = (
                    data.get("error") if isinstance(data, dict)
                    else raw.decode("utf-8", "replace")
                )
                raise ServeClientError(response.status, str(message))
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Routes

    def health(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def submit(self, spec: Any) -> Dict[str, Any]:
        """POST /jobs — ``spec`` is a :class:`JobSpec` or a dict."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request("POST", "/jobs", body=spec)

    def list_jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """GET /jobs (optionally filtered to one tenant)."""
        path = "/jobs"
        if tenant is not None:
            path += "?" + urllib.parse.urlencode({"tenant": tenant})
        return self._request("GET", path)["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """GET /jobs/<id>."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """POST /jobs/<id>/cancel."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result(self, job_id: str,
               with_pickle: bool = False) -> Dict[str, Any]:
        """GET /jobs/<id>/report (optionally with the pickle payload)."""
        suffix = "" if with_pickle else "?pickle=0"
        return self._request("GET", f"/jobs/{job_id}/report{suffix}")

    def report(self, job_id: str) -> Any:
        """The finalized report object, unpickled from the server."""
        payload = self.result(job_id, with_pickle=True)
        raw = payload.get("report_pickle_base64")
        if raw is None:
            raise ServeClientError(
                500, f"job {job_id} served no report pickle"
            )
        return pickle.loads(base64.b64decode(raw))

    def events(self, job_id: str, *, since: int = 0,
               follow: bool = False) -> Iterator[Dict[str, Any]]:
        """GET /jobs/<id>/events — yield events as they stream in."""
        query = urllib.parse.urlencode({
            "since": since, "follow": "1" if follow else "0",
        })
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/jobs/{job_id}/events?{query}",
                headers=self._headers(),
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw)["error"]
                except (ValueError, KeyError, TypeError):
                    message = raw.decode("utf-8", "replace")
                raise ServeClientError(response.status, str(message))
            for line in response:
                line = line.strip()
                if not line:
                    continue  # keepalive blank line
                yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    408,
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s",
                )
            time.sleep(poll)


def read_server_address(state_dir: str) -> Dict[str, Any]:
    """Read ``server.json`` from a server state directory."""
    import os

    path = os.path.join(state_dir, "server.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
