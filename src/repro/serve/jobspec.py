"""Validated job submissions: JSON in, campaign jobs out.

A :class:`JobSpec` is the service's unit of work — the same
experiment/seeds/fuzz-runs/explore parameters the ``repro campaign``
and ``repro explore`` CLIs take, as a JSON object::

    {"experiment": "falsify",  "seeds": 50}
    {"experiment": "protocol", "protocol": "racing", "seeds": 50}
    {"experiment": "fuzz",     "runs": 200, "schedule_length": 40}
    {"experiment": "explore",  "scenario": "truncated", "symmetry": false}

plus the engine options every experiment accepts: ``chunk_size``,
``verify_certificates``, and (explore only) ``packed``/``symmetry``.
:func:`build_job` turns a validated spec into the exact same frozen
campaign job the CLI would build, so a service job's merged report is
``==``-identical to the batch run of the same parameters — and the
spec JSON is what the job store persists, so a restarted server
rebuilds byte-identical jobs (and hence matching checkpoint
fingerprints) from disk.

Validation is strict: unknown experiments, unknown keys, out-of-range
sizes, and the unsupported ``symmetry`` + ``packed=False`` combination
all raise :class:`JobSpecError`, which the HTTP layer maps to 400.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: Experiments the service accepts; each mirrors a CLI code path.
EXPERIMENTS = ("falsify", "protocol", "fuzz", "explore")

#: Named protocols for ``experiment=protocol`` sweeps.
SWEEP_PROTOCOLS = ("racing", "minseen")

#: Exploration scenarios, matching ``repro explore --scenario``.
EXPLORE_SCENARIOS = ("truncated", "racing", "minseen", "anonymous")

#: Upper bounds keeping one tenant's job from monopolizing the service.
MAX_SEEDS = 100_000
MAX_RUNS = 100_000
MAX_CONFIGS = 5_000_000


class JobSpecError(ReproError):
    """A job submission failed validation (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated campaign job submission.

    Defaults match the CLI defaults, so ``{"experiment": "fuzz"}`` is
    the service spelling of ``repro campaign --experiment fuzz``.
    """

    experiment: str
    seeds: int = 50
    protocol: str = "racing"
    runs: int = 200
    schedule_length: int = 40
    seed: int = 0
    scenario: str = "truncated"
    max_configs: int = 200_000
    max_steps: Optional[int] = 30
    prefix_depth: int = 2
    packed: bool = True
    symmetry: bool = False
    chunk_size: Optional[int] = None
    verify_certificates: bool = False

    def __post_init__(self):
        """Reject invalid parameter combinations at construction time."""
        if self.experiment not in EXPERIMENTS:
            raise JobSpecError(
                f"unknown experiment {self.experiment!r}; expected one "
                f"of {EXPERIMENTS}"
            )
        if self.protocol not in SWEEP_PROTOCOLS:
            raise JobSpecError(
                f"unknown protocol {self.protocol!r}; expected one of "
                f"{SWEEP_PROTOCOLS}"
            )
        if self.scenario not in EXPLORE_SCENARIOS:
            raise JobSpecError(
                f"unknown scenario {self.scenario!r}; expected one of "
                f"{EXPLORE_SCENARIOS}"
            )
        if not 1 <= self.seeds <= MAX_SEEDS:
            raise JobSpecError(
                f"seeds must be in [1, {MAX_SEEDS}], got {self.seeds}"
            )
        if not 1 <= self.runs <= MAX_RUNS:
            raise JobSpecError(
                f"runs must be in [1, {MAX_RUNS}], got {self.runs}"
            )
        if not 1 <= self.schedule_length <= 10_000:
            raise JobSpecError(
                f"schedule_length must be in [1, 10000], got "
                f"{self.schedule_length}"
            )
        if not 1 <= self.max_configs <= MAX_CONFIGS:
            raise JobSpecError(
                f"max_configs must be in [1, {MAX_CONFIGS}], got "
                f"{self.max_configs}"
            )
        if self.max_steps is not None and self.max_steps < 1:
            raise JobSpecError(
                f"max_steps must be >= 1 or null, got {self.max_steps}"
            )
        if not 0 <= self.prefix_depth <= 8:
            raise JobSpecError(
                f"prefix_depth must be in [0, 8], got {self.prefix_depth}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise JobSpecError(
                f"chunk_size must be >= 1 or null, got {self.chunk_size}"
            )
        if self.symmetry and not self.packed:
            raise JobSpecError(
                "symmetry requires the packed encoding "
                "(drop \"packed\": false)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-ready dict (the persisted wire form)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: Any) -> "JobSpec":
        """Parse and validate a submission object.

        Unknown keys are rejected (a typo'd option silently ignored
        would silently run the wrong campaign); type errors surface as
        :class:`JobSpecError`.
        """
        if not isinstance(data, dict):
            raise JobSpecError(
                f"job spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(JobSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobSpecError(
                f"unknown job spec key(s): {', '.join(unknown)}"
            )
        if "experiment" not in data:
            raise JobSpecError("job spec needs an \"experiment\" key")
        checked: Dict[str, Any] = {}
        for spec_field in fields(JobSpec):
            if spec_field.name not in data:
                continue
            value = data[spec_field.name]
            if spec_field.name in ("packed", "symmetry",
                                   "verify_certificates"):
                if not isinstance(value, bool):
                    raise JobSpecError(
                        f"{spec_field.name} must be a boolean, got "
                        f"{value!r}"
                    )
            elif spec_field.name in ("experiment", "protocol", "scenario"):
                if not isinstance(value, str):
                    raise JobSpecError(
                        f"{spec_field.name} must be a string, got "
                        f"{value!r}"
                    )
            elif value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise JobSpecError(
                    f"{spec_field.name} must be an integer, got {value!r}"
                )
            checked[spec_field.name] = value
        return JobSpec(**checked)


def build_job(spec: JobSpec):
    """Build the campaign job a spec describes.

    Mirrors the CLI construction paths exactly (``cmd_campaign`` /
    ``cmd_explore`` in :mod:`repro.__main__`), so a service job and the
    equivalent batch invocation produce ``==``-identical reports — and
    identical checkpoint fingerprints, which is what lets a restarted
    server resume a journal written before the crash.
    """
    from repro.analysis.fuzz import DEFAULT_MAX_SAVED_VIOLATIONS
    from repro.campaign.jobs import (
        ExploreJob,
        FuzzJob,
        SweepProtocolJob,
        SweepSimulationJob,
    )
    from repro.protocols import (
        AnonymousSweepConsensus,
        KSetAgreementTask,
        MinSeen,
        RacingConsensus,
        TruncatedProtocol,
    )

    if spec.experiment == "falsify":
        return SweepSimulationJob(
            protocol=TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1,
            inputs=(0, 1), seeds=tuple(range(spec.seeds)),
            task=KSetAgreementTask(1),
        )
    if spec.experiment == "protocol":
        protocol, inputs, task = {
            "racing": (
                RacingConsensus(3), (0, 1, 1), KSetAgreementTask(1)
            ),
            "minseen": (
                MinSeen(3, rounds=2), (4, 1, 9), KSetAgreementTask(3)
            ),
        }[spec.protocol]
        return SweepProtocolJob(
            protocol=protocol, inputs=inputs,
            seeds=tuple(range(spec.seeds)), task=task,
        )
    if spec.experiment == "fuzz":
        return FuzzJob(
            protocol=TruncatedProtocol(RacingConsensus(3), 1),
            inputs=(0, 1, 2), task=KSetAgreementTask(1), runs=spec.runs,
            schedule_length=spec.schedule_length, seed=spec.seed,
            max_saved_violations=DEFAULT_MAX_SAVED_VIOLATIONS,
        )
    # explore — the CLI's scenario table.
    protocol, inputs, task = {
        "truncated": (
            TruncatedProtocol(RacingConsensus(3), 1), (0, 1, 2),
            KSetAgreementTask(1),
        ),
        "racing": (RacingConsensus(2), (0, 1), KSetAgreementTask(1)),
        "minseen": (MinSeen(2), (0, 1), KSetAgreementTask(2)),
        "anonymous": (
            AnonymousSweepConsensus(3, m=2), (0, 1, 1),
            KSetAgreementTask(1),
        ),
    }[spec.scenario]
    return ExploreJob(
        protocol=protocol, inputs=inputs, task=task,
        max_configs=spec.max_configs, max_steps=spec.max_steps,
        prefix_depth=spec.prefix_depth, packed=spec.packed,
        symmetry=spec.symmetry,
    )
