"""Campaign-as-a-service: a long-lived async job API over the pool.

The campaign engine runs one batch per CLI invocation; this package
turns it into a durable, multi-tenant service.  An asyncio HTTP/JSON
API (:mod:`repro.serve.service`) accepts sweep/fuzz/explore jobs
(:mod:`repro.serve.jobspec` — the same experiments the CLI runs),
multiplexes many concurrent campaigns over one shared worker pool with
fair round-robin chunk interleaving and per-tenant quotas
(:mod:`repro.serve.scheduler`, built on
:class:`~repro.campaign.pump.CampaignPump`), streams incremental
per-chunk progress as NDJSON, and persists every job crash-safely
(:mod:`repro.serve.store`): job metadata in atomically-replaced status
files, chunk reports in the PR 5 checkpoint journal.  Killing the
server at any instant and restarting it against the same state
directory resumes all unfinished jobs and serves final reports
``==``-identical to uninterrupted runs — the resume contract promoted
to a service invariant (docs/SERVICE.md).

* :mod:`repro.serve.jobspec` — validated job submissions → campaign jobs;
* :mod:`repro.serve.store` — durable job state machine + event log;
* :mod:`repro.serve.scheduler` — fair multiplexing over the shared pool;
* :mod:`repro.serve.http` — the minimal stdlib HTTP/1.1 layer;
* :mod:`repro.serve.service` — routes, wiring, and ``repro serve``;
* :mod:`repro.serve.client` — a stdlib client for tests and drills.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobspec import JobSpec, JobSpecError, build_job
from repro.serve.scheduler import QuotaExceeded, Scheduler, TenantQuotas
from repro.serve.service import ServeApp, serve_main
from repro.serve.store import JOB_STATES, JobStore, ServeJob

__all__ = [
    "JobSpec",
    "JobSpecError",
    "build_job",
    "Scheduler",
    "TenantQuotas",
    "QuotaExceeded",
    "ServeApp",
    "serve_main",
    "ServeClient",
    "ServeClientError",
    "JobStore",
    "ServeJob",
    "JOB_STATES",
]
