"""Durable job state for the campaign service.

Every job owns one directory under ``<state>/jobs/<id>/``::

    job.json       # identity + state machine, atomically replaced
    journal.ckpt   # the PR 5 chunk-report checkpoint journal
    events.ndjson  # append-only per-chunk telemetry event log
    report.pkl     # the finalized merged report (pickle), terminal jobs
    result.json    # summary / telemetry / missing ranges, terminal jobs

The state machine is ``queued → running → done | failed | cancelled``.
``job.json`` is only ever written via tmp → fsync → ``os.replace`` (the
same discipline as the checkpoint journal), so a SIGKILL at any instant
leaves either the old or the new status on disk — never a torn one.  A
job found in ``queued`` or ``running`` at startup was interrupted by a
crash; :meth:`JobStore.recoverable` hands it back to the scheduler,
which resumes it from its journal.  Chunk-level durability lives in the
journal itself: the merged report of a resumed job is ``==``-identical
to an uninterrupted run (docs/CAMPAIGNS.md, promoted to a service
invariant in docs/SERVICE.md).

The event log is advisory telemetry (progress streaming), not source of
truth; a truncated final line after a crash is tolerated and skipped.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve.jobspec import JobSpec

#: Version stamp for ``job.json``; bump on layout changes.
JOB_SCHEMA_VERSION = 1

#: The job state machine's states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States from which no further transition is possible.
TERMINAL_STATES = ("done", "failed", "cancelled")


class StoreError(ReproError):
    """A job directory is missing or unreadable."""


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via tmp → fsync → rename."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory,
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


@dataclass
class ServeJob:
    """One service job: identity, spec, and state-machine position."""

    id: str
    tenant: str
    spec: JobSpec
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """The ``job.json`` wire form."""
        return {
            "schema_version": JOB_SCHEMA_VERSION,
            "id": self.id,
            "tenant": self.tenant,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ServeJob":
        """Rebuild a job from its persisted ``job.json`` object."""
        if data.get("schema_version") != JOB_SCHEMA_VERSION:
            raise StoreError(
                f"job record has schema_version "
                f"{data.get('schema_version')!r}; this build reads "
                f"{JOB_SCHEMA_VERSION}"
            )
        state = data.get("state")
        if state not in JOB_STATES:
            raise StoreError(f"job record has unknown state {state!r}")
        return ServeJob(
            id=str(data["id"]),
            tenant=str(data["tenant"]),
            spec=JobSpec.from_dict(data["spec"]),
            state=state,
            created_at=float(data.get("created_at") or 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error"),
        )


class JobStore:
    """The on-disk job registry under one server state directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths

    def job_dir(self, job_id: str) -> str:
        """The directory holding one job's files."""
        return os.path.join(self.jobs_dir, job_id)

    def journal_path(self, job_id: str) -> str:
        """The job's chunk-report checkpoint journal."""
        return os.path.join(self.job_dir(job_id), "journal.ckpt")

    def events_path(self, job_id: str) -> str:
        """The job's append-only NDJSON event log."""
        return os.path.join(self.job_dir(job_id), "events.ndjson")

    def report_path(self, job_id: str) -> str:
        """The finalized report pickle (terminal jobs only)."""
        return os.path.join(self.job_dir(job_id), "report.pkl")

    def result_path(self, job_id: str) -> str:
        """The finalized result summary JSON (terminal jobs only)."""
        return os.path.join(self.job_dir(job_id), "result.json")

    # ------------------------------------------------------------------
    # Lifecycle

    def create(self, tenant: str, spec: JobSpec) -> ServeJob:
        """Register a new queued job and persist it."""
        job = ServeJob(id=uuid.uuid4().hex[:12], tenant=tenant, spec=spec)
        self.save(job)
        return job

    def save(self, job: ServeJob) -> None:
        """Persist the job's current state atomically."""
        _atomic_write(
            os.path.join(self.job_dir(job.id), "job.json"),
            json.dumps(job.to_dict(), sort_keys=True) + "\n",
        )

    def transition(self, job: ServeJob, state: str,
                   error: Optional[str] = None) -> None:
        """Move the job to ``state`` and persist the change.

        Stamps ``started_at``/``finished_at`` on the way; refuses to
        move a terminal job (the crash-recovery path goes through
        :meth:`recoverable`, which only touches non-terminal jobs).
        """
        if state not in JOB_STATES:
            raise StoreError(f"unknown job state {state!r}")
        if job.terminal:
            raise StoreError(
                f"job {job.id} is already {job.state}; cannot move to "
                f"{state}"
            )
        job.state = state
        if state == "running" and job.started_at is None:
            job.started_at = time.time()
        if state in TERMINAL_STATES:
            job.finished_at = time.time()
        job.error = error
        self.save(job)

    def load(self, job_id: str) -> ServeJob:
        """Read one job back from disk."""
        path = os.path.join(self.job_dir(job_id), "job.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return ServeJob.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError) as exc:
            raise StoreError(
                f"cannot read job {job_id!r}: {exc}"
            ) from exc

    def list_jobs(self) -> List[ServeJob]:
        """All readable jobs, oldest first (unreadable dirs skipped)."""
        jobs = []
        try:
            entries = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return []
        for entry in entries:
            try:
                jobs.append(self.load(entry))
            except StoreError:
                continue
        jobs.sort(key=lambda job: (job.created_at, job.id))
        return jobs

    def recoverable(self) -> List[ServeJob]:
        """Jobs interrupted by a crash: still queued or running on disk."""
        return [job for job in self.list_jobs() if not job.terminal]

    # ------------------------------------------------------------------
    # Events

    def append_event(self, job_id: str, event: Dict[str, Any]) -> None:
        """Append one event line to the job's NDJSON log."""
        with open(self.events_path(job_id), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")

    def read_events(self, job_id: str) -> List[Dict[str, Any]]:
        """Replay the event log, skipping a crash-truncated last line."""
        events: List[Dict[str, Any]] = []
        try:
            with open(self.events_path(job_id), "r",
                      encoding="utf-8") as fh:
                for line in fh:
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        break
        except OSError:
            pass
        return events

    # ------------------------------------------------------------------
    # Results

    def save_result(self, job: ServeJob, result: Any) -> None:
        """Persist a finished campaign's report and summary.

        ``report.pkl`` carries the full report object (the drill
        unpickles it to assert ``==``-identity with an uninterrupted
        run); ``result.json`` carries what the HTTP API serves without
        unpickling.
        """
        payload = pickle.dumps(result.report,
                               protocol=pickle.HIGHEST_PROTOCOL)
        directory = self.job_dir(job.id)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix="report.", suffix=".tmp", dir=directory,
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.report_path(job.id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        certificates = getattr(result.report, "certificates", None) or []
        _atomic_write(self.result_path(job.id), json.dumps({
            "summary": result.report.summary(),
            "repr": repr(result.report),
            "telemetry": result.telemetry.summary(),
            "complete": result.complete,
            "missing": list(result.missing),
            "certificates": [
                {
                    "kind": cert.kind,
                    "schema_version": cert.schema_version,
                    "payload": cert.payload,
                    "checksum": cert.checksum,
                }
                for cert in certificates
            ],
        }, sort_keys=True) + "\n")

    def load_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The persisted result summary, or ``None`` if absent."""
        try:
            with open(self.result_path(job_id), "r",
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def load_report_pickle(self, job_id: str) -> Optional[bytes]:
        """The finalized report's pickle bytes, or ``None`` if absent."""
        try:
            with open(self.report_path(job_id), "rb") as handle:
                return handle.read()
        except OSError:
            return None
