"""A minimal HTTP/1.1 layer over asyncio streams, stdlib only.

The service needs exactly four HTTP behaviors: parse a request line +
headers + optional body, send a JSON response, stream NDJSON until the
connection closes, and map errors to status codes.  That is small
enough that a hand-rolled parser over ``asyncio.StreamReader`` beats
dragging in a framework — and the repo's no-new-dependencies rule makes
the choice for us anyway.

Deliberate simplifications, safe because the service speaks
``Connection: close`` on every response: no keep-alive, no chunked
*request* bodies (``Content-Length`` only), and NDJSON streams are
delimited by connection close rather than chunked transfer encoding.
Request bodies are capped (:data:`MAX_BODY_BYTES`) so a misbehaving
client cannot balloon server memory.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Upper bound on request body size (job specs are tiny).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 1 << 16

#: Reason phrases for the statuses the service emits.
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error with an HTTP status; handlers raise, the server maps."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (400 on syntax errors)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def read_request(
    reader: "asyncio.StreamReader",
) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on a clean EOF."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request headers too large") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")
    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    parsed = urllib.parse.urlsplit(target)
    query = {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(
            parsed.query, keep_blank_values=True
        ).items()
    }
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line: {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "invalid Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    return Request(
        method=method.upper(),
        path=urllib.parse.unquote(parsed.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str,
          content_length: Optional[int]) -> bytes:
    """Build a response status line + header block."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(status: int, payload: Any) -> bytes:
    """A complete JSON response as bytes."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _head(status, "application/json", len(body)) + body


def error_response(status: int, message: str) -> bytes:
    """A complete JSON error response as bytes."""
    return json_response(status, {"error": message, "status": status})


def stream_head(status: int = 200,
                content_type: str = "application/x-ndjson") -> bytes:
    """Response head for a close-delimited stream (no Content-Length)."""
    return _head(status, content_type, None)
