"""The campaign service: routes, server wiring, and ``repro serve``.

:class:`ServeApp` binds the HTTP layer to the scheduler and store::

    GET  /healthz            liveness + pool/quota configuration
    POST /jobs               submit a job spec (tenant = X-Api-Key)
    GET  /jobs               list jobs (``?tenant=`` to filter)
    GET  /jobs/<id>          status + chunk progress + result summary
    GET  /jobs/<id>/events   NDJSON event stream (``?since=``, ``?follow=``)
    GET  /jobs/<id>/report   result summary + base64 report pickle
    POST /jobs/<id>/cancel   cancel a queued/running job

Every response closes the connection; clients poll or hold one stream
per job.  The server writes ``server.json`` (host, bound port, pid)
into its state directory on startup so drills and scripts can start it
with ``--port 0`` and discover the real port — and so an operator can
tell which process owns a state directory.

:func:`serve_main` is the blocking entry point behind ``repro serve``:
it recovers unfinished jobs from the state directory, serves until
SIGINT/SIGTERM, and shuts down *without* draining — by design, a
shutdown is indistinguishable from a crash, so the resume path is
exercised on every restart rather than only on bad days.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve.http import (
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    stream_head,
)
from repro.serve.jobspec import JobSpec, JobSpecError
from repro.serve.scheduler import (
    JobRuntime,
    QuotaExceeded,
    Scheduler,
    TenantQuotas,
)
from repro.serve.store import JobStore

#: Tenant assigned to requests that send no ``X-Api-Key`` header.
DEFAULT_TENANT = "anonymous"


class ServeApp:
    """Routes HTTP requests onto one scheduler + store pair."""

    def __init__(self, store: JobStore, scheduler: Scheduler):
        self.store = store
        self.scheduler = scheduler
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Server lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Recover jobs, bind the listener, write ``server.json``.

        Returns the bound port (useful with ``port=0``).
        """
        recovered = await self.scheduler.start()
        if recovered:
            print(f"serve: recovered {recovered} unfinished job(s) from "
                  f"{self.store.root}", file=sys.stderr)
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()[1]
        with open(os.path.join(self.store.root, "server.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(
                {"host": host, "port": bound, "pid": os.getpid()},
                handle, sort_keys=True,
            )
            handle.write("\n")
        return bound

    async def stop(self) -> None:
        """Close the listener and stop the scheduler (no drain)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        """Serve one request on one connection, then close it."""
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except HttpError as error:
                writer.write(error_response(error.status, error.message))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as error:  # route bugs become 500s
                writer.write(error_response(
                    500, f"{type(error).__name__}: {error}"
                ))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: "asyncio.StreamWriter"
    ) -> None:
        """Route one request to its handler."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            writer.write(json_response(200, self._health()))
            return
        if path == "/jobs":
            if method == "POST":
                writer.write(self._submit(request))
                return
            if method == "GET":
                writer.write(self._list(request))
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job_id = parts[0]
            tail = parts[1] if len(parts) == 2 else None
            if len(parts) > 2 or not job_id:
                raise HttpError(404, f"no such resource: {path}")
            if tail is None and method == "GET":
                writer.write(self._status(job_id))
                return
            if tail == "report" and method == "GET":
                writer.write(self._report(job_id, request))
                return
            if tail == "cancel" and method == "POST":
                writer.write(self._cancel(job_id))
                return
            if tail == "events" and method == "GET":
                await self._stream_events(job_id, request, writer)
                return
            if tail in (None, "report", "cancel", "events"):
                raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no such resource: {path}")

    # ------------------------------------------------------------------
    # Handlers

    def _health(self) -> Dict[str, Any]:
        """The /healthz payload."""
        quotas = self.scheduler.quotas
        return {
            "ok": True,
            "workers": self.scheduler.workers,
            "executor": self.scheduler.executor_kind,
            "quotas": {
                "max_inflight_chunks": quotas.max_inflight_chunks,
                "max_active_jobs": quotas.max_active_jobs,
            },
            "jobs": len(self.scheduler.runtimes()),
        }

    def _tenant(self, request: Request) -> str:
        """The tenant (API key) a request acts as."""
        return request.headers.get("x-api-key", DEFAULT_TENANT)

    def _submit(self, request: Request) -> bytes:
        """POST /jobs — validate, enforce quota, enqueue."""
        try:
            spec = JobSpec.from_dict(request.json())
        except JobSpecError as error:
            raise HttpError(400, str(error)) from error
        try:
            job = self.scheduler.submit(self._tenant(request), spec)
        except QuotaExceeded as error:
            raise HttpError(429, str(error)) from error
        return json_response(202, self._job_payload(job.id))

    def _list(self, request: Request) -> bytes:
        """GET /jobs — all jobs, optionally one tenant's."""
        tenant = request.query.get("tenant")
        payloads: List[Dict[str, Any]] = []
        for runtime in self.scheduler.runtimes():
            if tenant is not None and runtime.job.tenant != tenant:
                continue
            payloads.append(self._job_payload(runtime.job.id))
        return json_response(200, {"jobs": payloads})

    def _runtime(self, job_id: str) -> JobRuntime:
        """The runtime for ``job_id``, or 404."""
        runtime = self.scheduler.get(job_id)
        if runtime is None:
            raise HttpError(404, f"no such job: {job_id}")
        return runtime

    def _job_payload(self, job_id: str) -> Dict[str, Any]:
        """The status object served for one job."""
        runtime = self._runtime(job_id)
        job = runtime.job
        payload = job.to_dict()
        payload["progress"] = runtime.progress()
        payload["events"] = len(runtime.events)
        if job.state == "done":
            payload["result"] = self.store.load_result(job.id)
        return payload

    def _status(self, job_id: str) -> bytes:
        """GET /jobs/<id>."""
        return json_response(200, self._job_payload(job_id))

    def _report(self, job_id: str, request: Request) -> bytes:
        """GET /jobs/<id>/report — summary plus the report pickle."""
        runtime = self._runtime(job_id)
        if runtime.job.state != "done":
            raise HttpError(
                409,
                f"job {job_id} is {runtime.job.state}; the report is "
                f"only available once it is done",
            )
        result = self.store.load_result(job_id)
        if result is None:
            raise HttpError(500, f"job {job_id} has no persisted result")
        payload: Dict[str, Any] = {"id": job_id, "result": result}
        if request.query.get("pickle", "1") != "0":
            raw = self.store.load_report_pickle(job_id)
            if raw is not None:
                payload["report_pickle_base64"] = (
                    base64.b64encode(raw).decode("ascii")
                )
        return json_response(200, payload)

    def _cancel(self, job_id: str) -> bytes:
        """POST /jobs/<id>/cancel."""
        job = self.scheduler.cancel(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return json_response(200, self._job_payload(job_id))

    async def _stream_events(
        self,
        job_id: str,
        request: Request,
        writer: "asyncio.StreamWriter",
    ) -> None:
        """GET /jobs/<id>/events — replay, then follow until terminal."""
        runtime = self._runtime(job_id)
        try:
            since = int(request.query.get("since", "0"))
        except ValueError as exc:
            raise HttpError(400, "since must be an integer") from exc
        follow = request.query.get("follow", "1") != "0"
        writer.write(stream_head())
        cursor = max(0, since)
        while True:
            while cursor < len(runtime.events):
                line = json.dumps(
                    runtime.events[cursor], sort_keys=True
                ) + "\n"
                writer.write(line.encode("utf-8"))
                cursor += 1
            await writer.drain()
            if not follow or runtime.job.terminal:
                return
            waiter = runtime.event_added
            if cursor < len(runtime.events):
                continue
            try:
                await asyncio.wait_for(waiter.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                # Periodic keepalive so dead clients are noticed.
                writer.write(b"\n")
                await writer.drain()


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro serve`` options on ``parser``.

    Shared between the standalone parser and the ``repro`` subcommand
    so the two spellings cannot drift.
    """
    parser.add_argument(
        "--state", required=True,
        help="server state directory (created if missing); restarting "
             "against the same directory resumes unfinished jobs",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks a free port (see server.json)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker pool size (default: auto from CPU count)",
    )
    parser.add_argument(
        "--executor", choices=("process", "thread"), default="process",
        help="where chunk bodies run (default process)",
    )
    parser.add_argument(
        "--max-inflight-chunks", type=int, default=4,
        help="per-tenant cap on chunks occupying workers (default 4)",
    )
    parser.add_argument(
        "--max-active-jobs", type=int, default=8,
        help="per-tenant cap on queued+running jobs (default 8)",
    )


def build_serve_parser() -> argparse.ArgumentParser:
    """The standalone ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the campaign job service over a state directory.",
    )
    add_serve_arguments(parser)
    return parser


async def _amain(args: argparse.Namespace) -> int:
    """Async body of ``repro serve``: serve until SIGINT/SIGTERM."""
    store = JobStore(args.state)
    scheduler = Scheduler(
        store,
        workers=args.workers,
        quotas=TenantQuotas(
            max_inflight_chunks=args.max_inflight_chunks,
            max_active_jobs=args.max_active_jobs,
        ),
        executor=args.executor,
    )
    app = ServeApp(store, scheduler)
    port = await app.start(host=args.host, port=args.port)
    print(f"serve: listening on http://{args.host}:{port} "
          f"(state: {store.root}, workers: {scheduler.workers})",
          file=sys.stderr, flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    await stop.wait()
    print("serve: shutting down (unfinished jobs resume on restart)",
          file=sys.stderr, flush=True)
    await app.stop()
    return 0


def serve_main(args: Optional[argparse.Namespace] = None,
               argv: Optional[List[str]] = None) -> int:
    """Blocking entry point for ``repro serve``."""
    if args is None:
        args = build_serve_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0
    except ReproError as error:
        print(f"serve: error: {error}", file=sys.stderr)
        return 2
