"""Trivial wait-free protocols used to exercise the machinery.

These solve *weak* tasks (n-set agreement, "min of values seen") but do it
in proper scan/update normal form, so they drive every code path of the
runtime, the augmented snapshot, and the revisionist simulation — including
the happy path where simulated processes decide and their simulators decide
with them.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol


class ImmediateDecide(Protocol):
    """Write your input once, scan once, decide your own input.

    Wait-free; solves n-set agreement (validity holds trivially).  Uses one
    component per process so executions still exercise multi-component
    snapshots.  State: ``(phase, index, value)`` with phases
    ``"update" -> "scan" -> "done"``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = n
        self.name = f"immediate-decide(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("update", index, value)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, index, value = state
        if phase == "update":
            return (UPDATE, (index, value))
        if phase == "scan":
            return (SCAN, None)
        return (DECIDE, value)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, index, value = state
        if phase == "update":
            return ("scan", index, value)
        if phase == "scan":
            return ("done", index, value)
        raise ProtocolError(f"{self.name}: advance on decided state")


class RotatingWrites(Protocol):
    """Write your value to a different component each round, decide min seen.

    Process ``i`` writes its input to component ``(i + round) % m`` in each
    of ``rounds`` write/scan rounds, then decides the minimum value present
    in its final scan (or its own input if alone).  Wait-free and
    validity-preserving like :class:`MinSeen`, but because the written
    component *changes* every round, a covering simulator revising this
    process's past gets genuinely non-empty hidden executions: the process
    locally performs updates inside the covered set and scans before
    stopping at a fresh component.  This is the canonical workload for
    exercising the revisionist machinery (experiment E3/E8).

    State: ``(phase, rounds_left, index, value, best)``.
    """

    def __init__(self, n: int, m: int, rounds: int = 2) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        if m < 1:
            raise ValidationError("m must be at least 1")
        if rounds < 1:
            raise ValidationError("rounds must be at least 1")
        self.n = n
        self.m = m
        self.rounds = rounds
        self.name = f"rotating-writes(n={n}, m={m}, rounds={rounds})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("update", self.rounds, index, value, None)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, rounds_left, index, value, best = state
        if phase == "update":
            component = (index + rounds_left) % self.m
            return (UPDATE, (component, value))
        if phase == "scan":
            return (SCAN, None)
        return (DECIDE, best)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, rounds_left, index, value, best = state
        if phase == "update":
            return ("scan", rounds_left, index, value, best)
        if phase == "scan":
            present = [v for v in observation if v is not None]
            best = min(present) if present else value
            if rounds_left > 1:
                return ("update", rounds_left - 1, index, value, best)
            return ("done", 0, index, value, best)
        raise ProtocolError(f"{self.name}: advance on decided state")


class MinSeen(Protocol):
    """Write your input, scan, decide the minimum value present.

    Wait-free.  Decisions are always inputs (validity) but up to n distinct
    values can be decided, so this is *not* k-set agreement for k < n — it
    is the canonical "correct protocol for a weak task" input for positive
    runs of the simulation.  Optional ``rounds`` > 1 repeats the
    write/scan round to lengthen executions; the decision is the minimum
    seen in the final scan.  State: ``(rounds_left, index, value, best)``.
    """

    def __init__(self, n: int, rounds: int = 1) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        if rounds < 1:
            raise ValidationError("rounds must be at least 1")
        self.n = n
        self.m = n
        self.rounds = rounds
        self.name = f"min-seen(n={n}, rounds={rounds})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("update", self.rounds, index, value, None)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, rounds_left, index, value, best = state
        if phase == "update":
            return (UPDATE, (index, value))
        if phase == "scan":
            return (SCAN, None)
        return (DECIDE, best)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, rounds_left, index, value, best = state
        if phase == "update":
            return ("scan", rounds_left, index, value, best)
        if phase == "scan":
            present = [v for v in observation if v is not None]
            best = min(present) if present else value
            if rounds_left > 1:
                return ("update", rounds_left - 1, index, value, best)
            return ("done", 0, index, value, best)
        raise ProtocolError(f"{self.name}: advance on decided state")
