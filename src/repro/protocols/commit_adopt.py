"""Commit–adopt: the classical graded-agreement building block.

Commit–adopt (Gafni's safe-agreement relative; also the engine inside many
obstruction-free consensus constructions in the paper's citation list
[GR05, Bow11]) is a one-shot task: each process proposes a value and
outputs ``(COMMIT, v)`` or ``(ADOPT, v)`` such that

* **validity** — every output value is some process's proposal;
* **coherence** — if anyone commits ``v``, every output is ``(·, v)``;
* **convergence** — if all proposals are equal, everyone commits.

It is wait-free from 2n single-writer registers (two announcement rounds),
so it sits strictly below consensus in power: rounds of commit–adopt give
obstruction-free consensus, but each round needs *fresh* registers — the
unbounded-space trap that makes the paper's bounded-space question (and
its n-register answer) interesting.  :class:`CommitAdopt` is the one-shot
task in normal form (fully, exhaustively model-checkable);
:class:`CommitAdoptTask` is its checker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol

COMMIT = "commit"
ADOPT = "adopt"


class CommitAdopt(Protocol):
    """One-shot commit–adopt for n processes on m = 2n components.

    Components 0..n-1 are round-A announcements (proposals); components
    n..2n-1 are round-B announcements carrying ``(saw_unanimity, value)``.
    Process i:

    1. writes its proposal to ``A[i]``; scans;
       sets ``flag = all visible A-entries equal my value``;
    2. writes ``(flag, value)`` to ``B[i]``; scans;
       - all visible B-entries flagged with my value → ``(COMMIT, value)``;
       - some flagged entry ``(True, w)`` → ``(ADOPT, w)`` (flagged values
         are unique — two flags for different values cannot both have seen
         unanimity);
       - otherwise → ``(ADOPT, value)``.

    State: ``(phase, index, value, flag)``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = 2 * n
        self.name = f"commit-adopt(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("writeA", index, value, None)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, index, value, flag = state
        if phase == "writeA":
            return (UPDATE, (index, value))
        if phase == "scanA":
            return (SCAN, None)
        if phase == "writeB":
            return (UPDATE, (self.n + index, (flag, value)))
        if phase == "scanB":
            return (SCAN, None)
        return (DECIDE, (phase, value))  # phase is COMMIT or ADOPT

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, index, value, flag = state
        if phase == "writeA":
            return ("scanA", index, value, flag)
        if phase == "scanA":
            proposals = [
                entry for entry in observation[: self.n] if entry is not None
            ]
            unanimous = all(entry == value for entry in proposals)
            return ("writeB", index, value, unanimous)
        if phase == "writeB":
            return ("scanB", index, value, flag)
        if phase == "scanB":
            announcements = [
                entry
                for entry in observation[self.n:]
                if entry is not None
            ]
            flagged = [w for saw, w in announcements if saw]
            if flagged and all(
                saw and w == value for saw, w in announcements
            ):
                return (COMMIT, index, value, flag)
            if flagged:
                # Coherence: all flagged entries carry the same value (two
                # flags require two disjoint unanimity views of round A,
                # impossible for different values).
                return (ADOPT, index, flagged[0], flag)
            return (ADOPT, index, value, flag)
        raise ProtocolError(f"{self.name}: advance on decided state")


class CommitAdoptConsensus(Protocol):
    """Obstruction-free consensus as rounds of commit–adopt.

    Round r runs a fresh :class:`CommitAdopt` instance on its own 2n
    components; a process that commits decides, one that adopts carries
    the adopted value into round r+1.  Solo, round 1 commits immediately;
    under contention an adversary can force adoption forever — which is
    why the construction needs a *fresh* instance per round and hence
    unbounded registers as rounds grow.  This protocol caps the rounds at
    ``max_rounds`` (using m = 2n·max_rounds components) and parks
    exhausted processes in a harmless undecided loop: it is safe
    everywhere and obstruction-free whenever a process gets
    ``max_rounds`` of solo time — the executable form of the space/rounds
    trade-off that makes the paper's n-register bound interesting.

    State: ``(round, inner_state)`` or ``("stuck", phase, index, value)``.
    """

    def __init__(self, n: int, max_rounds: int = 4) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        if max_rounds < 1:
            raise ValidationError("max_rounds must be at least 1")
        self.n = n
        self.max_rounds = max_rounds
        self.inner = CommitAdopt(n)
        self.m = self.inner.m * max_rounds
        self.name = f"ca-consensus(n={n}, rounds={max_rounds})"

    def _offset(self, round_no: int) -> int:
        return (round_no - 1) * self.inner.m

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return (1, self.inner.initial_state(index, value))

    def poised(self, state: Any) -> Tuple[str, Any]:
        if state[0] == "stuck":
            _tag, phase, index, value = state
            if phase == "scan":
                return (SCAN, None)
            # Rewrite our last round-B announcement (a no-op write).
            return (
                UPDATE,
                (self._offset(self.max_rounds) + self.n + index,
                 (False, value)),
            )
        round_no, inner_state = state
        kind, payload = self.inner.poised(inner_state)
        if kind == UPDATE:
            component, value = payload
            return (UPDATE, (self._offset(round_no) + component, value))
        if kind == DECIDE:
            # advance() resolves ADOPT transitions eagerly, so a decided
            # inner state seen here is always a commit.
            grade, value = payload
            if grade != COMMIT:  # pragma: no cover - eager resolution
                raise ProtocolError(f"{self.name}: unresolved adopt state")
            return (DECIDE, value)
        return (kind, payload)

    def advance(self, state: Any, observation: Any = None) -> Any:
        if state[0] == "stuck":
            _tag, phase, index, value = state
            return ("stuck", "write" if phase == "scan" else "scan",
                    index, value)
        round_no, inner_state = state
        kind, payload = self.inner.poised(inner_state)
        if kind == DECIDE:
            grade, value = payload
            index = inner_state[1]
            if grade == COMMIT:
                raise ProtocolError(f"{self.name}: advance on decided state")
            if round_no >= self.max_rounds:
                return ("stuck", "write", index, value)
            return (
                round_no + 1,
                self.inner.initial_state(index, value),
            )
        if observation is not None:
            offset = self._offset(round_no)
            observation = tuple(
                observation[offset + j] for j in range(self.inner.m)
            )
        inner_state = self.inner.advance(inner_state, observation)
        # Resolve transient adopted states eagerly so poised() stays pure.
        inner_kind, inner_payload = self.inner.poised(inner_state)
        if inner_kind == DECIDE and inner_payload[0] == ADOPT:
            index = inner_state[1]
            if round_no >= self.max_rounds:
                return ("stuck", "write", index, inner_payload[1])
            return (
                round_no + 1,
                self.inner.initial_state(index, inner_payload[1]),
            )
        return (round_no, inner_state)


class CommitAdoptTask:
    """Checker for the commit–adopt specification."""

    def __init__(self) -> None:
        self.name = "commit-adopt"

    def check(
        self, inputs: Sequence[Any], outputs: Dict[int, Any]
    ) -> List[str]:
        """Return violations of validity, coherence, and convergence."""
        violations = []
        legal = set(inputs)
        committed = set()
        for pid, decision in sorted(outputs.items()):
            if (
                not isinstance(decision, tuple)
                or len(decision) != 2
                or decision[0] not in (COMMIT, ADOPT)
            ):
                violations.append(
                    f"output shape: process {pid} returned {decision!r}"
                )
                continue
            grade, value = decision
            if value not in legal:
                violations.append(
                    f"validity: process {pid} output value {value!r} not "
                    "among proposals"
                )
            if grade == COMMIT:
                committed.add(value)
        if len(committed) > 1:
            violations.append(
                f"coherence: multiple values committed: {sorted(map(repr, committed))}"
            )
        elif committed:
            (winner,) = committed
            for pid, decision in sorted(outputs.items()):
                if isinstance(decision, tuple) and len(decision) == 2:
                    if decision[1] != winner:
                        violations.append(
                            f"coherence: {winner!r} was committed but "
                            f"process {pid} output {decision!r}"
                        )
        if len(set(inputs)) == 1 and outputs:
            for pid, decision in sorted(outputs.items()):
                if isinstance(decision, tuple) and decision[0] != COMMIT:
                    violations.append(
                        f"convergence: unanimous proposals but process "
                        f"{pid} only adopted"
                    )
        return violations
