"""k-set agreement protocols and the register-truncation falsifier input.

:class:`GroupedKSet` solves k-set agreement obstruction-free with ``n``
components by the standard value-partition construction: processes are
split into k groups and each group runs an independent obstruction-free
consensus on its members' components, so at most k values are decided and
validity is inherited.  (The paper's best upper bound, n-k+x registers
[BRS15], relies on anonymous multi-writer register techniques; the grouped
construction trades x-obstruction-freedom for x > 1 and k-1 extra registers
for a protocol whose correctness argument is compositional — the bound
*formulas* of :mod:`repro.core.bounds` carry the exact paper numbers.)

:class:`TruncatedProtocol` is the deliberately-broken input for the
falsifier experiments (E4): it aliases the base protocol's components into
``m' < m`` registers, i.e. it "uses too few registers" in the most literal
way.  Theorem 3 says no correct protocol can live below the bound, so the
revisionist simulation run on a truncated protocol must surface a concrete
safety violation or divergence.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ValidationError
from repro.protocols.base import UPDATE, Protocol
from repro.protocols.racing import RacingConsensus


class GroupedKSet(Protocol):
    """Obstruction-free k-set agreement by k independent racing groups.

    Process ``i`` belongs to group ``i % k`` and owns global component
    ``i``; group ``g``'s consensus instance sees exactly the components
    ``{rank * k + g}`` of its members.  A process decides its group's
    consensus value, so at most ``k`` values are decided overall.
    """

    def __init__(self, n: int, k: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        if not 1 <= k <= n:
            raise ValidationError("k must satisfy 1 <= k <= n")
        self.n = n
        self.k = k
        self.m = n
        self.name = f"grouped-{k}-set(n={n})"
        self._groups = [
            RacingConsensus(self._group_size(g)) for g in range(k)
        ]

    def _group_size(self, group: int) -> int:
        return (self.n - group + self.k - 1) // self.k

    def _global_component(self, group: int, rank: int) -> int:
        return rank * self.k + group

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        group, rank = index % self.k, index // self.k
        return (group, self._groups[group].initial_state(rank, value))

    def poised(self, state: Any) -> Tuple[str, Any]:
        group, inner_state = state
        kind, payload = self._groups[group].poised(inner_state)
        if kind == UPDATE:
            component, value = payload
            return (UPDATE, (self._global_component(group, component), value))
        return (kind, payload)

    def advance(self, state: Any, observation: Any = None) -> Any:
        group, inner_state = state
        inner = self._groups[group]
        if observation is not None:
            observation = tuple(
                observation[self._global_component(group, rank)]
                for rank in range(inner.n)
            )
        return (group, inner.advance(inner_state, observation))


class TruncatedProtocol(Protocol):
    """A base protocol forced onto fewer registers by component aliasing.

    Component ``j`` of the base protocol is mapped onto component
    ``j mod registers`` of a smaller snapshot; scans are expanded back by
    the same aliasing.  For ``registers < base.m`` distinct base components
    collide, which is precisely the "protocol that uses too few registers"
    object the lower-bound proof contradicts out of existence — so feeding
    this to the revisionist simulation must expose a violation.
    """

    def __init__(self, base: Protocol, registers: int) -> None:
        if registers < 1:
            raise ValidationError("registers must be at least 1")
        self.base = base
        self.n = base.n
        self.m = registers
        self.name = f"{base.name}|truncated-to-{registers}"

    def initial_state(self, index: int, value: Any) -> Any:
        return self.base.initial_state(index, value)

    def poised(self, state: Any) -> Tuple[str, Any]:
        kind, payload = self.base.poised(state)
        if kind == UPDATE:
            component, value = payload
            return (UPDATE, (component % self.m, value))
        return (kind, payload)

    def advance(self, state: Any, observation: Any = None) -> Any:
        if observation is not None:
            observation = tuple(
                observation[j % self.m] for j in range(self.base.m)
            )
        return self.base.advance(state, observation)
