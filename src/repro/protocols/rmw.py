"""Consensus protocols over read-modify-write base objects.

The paper's lower bound is for read/write registers; the surrounding
hierarchy results change the base object and ask the same question.
These families put the multi-primitive substrate to work:

* :class:`SwapConsensus` — one swap object, "swap your input in, adopt
  what you got back".  Correct for n = 2 (swap has consensus number 2)
  and *incorrect* for n ≥ 3: the falsifier finds the classic chain
  interleaving where the third process adopts the second's value.  This
  is the executable face of Ovens (2023)'s setting, where consensus
  from swap objects costs Ω(√n) space.
* :class:`CASConsensus` — one compare-and-swap object, the textbook
  consensus-number-∞ algorithm: CAS your input over the initial value
  and decide whatever won.  Correct for every n, so exploration
  certifies it safe at any instance size the budget affords.
* :class:`TASConsensus` — a test-and-set flag plus n proposal
  components.  Correct for n = 2 (test-and-set has consensus number 2)
  and incorrect for n = 3: a late loser can adopt a proposal that is
  neither its own nor the winner's.

All three stay in the scan/update normal form extended with the RMW
poised kind (:data:`repro.protocols.base.RMW`), so every analysis —
exploration, covering, space measurement, certification — applies
unchanged.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import (
    DECIDE,
    RMW,
    SCAN,
    SYMMETRY_FULL,
    UPDATE,
    Protocol,
)


class SwapConsensus(Protocol):
    """Consensus from one swap object: swap in, adopt what came out.

    Each process swaps its input into the single component; a process
    that got back the initial ``None`` was first and decides its own
    input, anyone else decides the value it swapped out.  For n = 2
    the second process always swaps out the first's input — agreement.
    For n ≥ 3 the i-th swapper adopts the (i-1)-th's input, so three
    processes can decide two different values; the falsifier exhibits
    exactly that chain.

    Anonymous (state never mentions the process index), so symmetry
    reduction applies.  State: ``("swap", value)`` then
    ``("done", decision)``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = 1
        self.name = f"swap-consensus(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("swap", value)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, value = state
        if phase == "swap":
            return (RMW, (0, "swap", (value,)))
        return (DECIDE, value)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, value = state
        if phase == "swap":
            # observation is the swapped-out value: None means we were
            # first (keep our input), anything else is adopted.
            return ("done", value if observation is None else observation)
        raise ProtocolError(f"{self.name}: advance on decided state")

    def symmetry(self) -> str:
        return SYMMETRY_FULL


class CASConsensus(Protocol):
    """Consensus from one compare-and-swap object, for any n.

    Each process CASes its input over the initial ``None``; the CAS
    returns the old value, so a process that saw ``None`` won and
    decides its own input, and every loser saw the winner's already-
    installed input and decides that.  Safe for every n — exploration
    certifies the absence of violations instead of finding one.

    Anonymous; state: ``("cas", value)`` then ``("done", decision)``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = 1
        self.name = f"cas-consensus(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("cas", value)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, value = state
        if phase == "cas":
            return (RMW, (0, "compare_and_swap", (None, value)))
        return (DECIDE, value)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, value = state
        if phase == "cas":
            # observation is the pre-CAS contents: None means our CAS
            # installed our input; otherwise it is the winner's input.
            return ("done", value if observation is None else observation)
        raise ProtocolError(f"{self.name}: advance on decided state")

    def symmetry(self) -> str:
        return SYMMETRY_FULL


class TASConsensus(Protocol):
    """Consensus from a test-and-set flag plus n proposal components.

    Component 0 is the flag; component 1 + i holds process i's proposal.
    Each process publishes its proposal, then plays test-and-set: the
    winner (who saw the unset flag) decides its own input; a loser scans
    and decides the lowest-indexed proposal *other than its own*.

    For n = 2 the only other proposal a loser can see is the winner's
    (the winner published before winning, and the loser scans after
    losing), so this solves consensus.  For n = 3 it does not: if
    process 1 wins after process 0 has published, a losing process 2
    adopts process 0's proposal — the falsifier finds that schedule.

    State: ``("propose", index, value)`` → ``("tas", index, value)`` →
    (win: ``("done", value)`` | lose: ``("scan", index, value)``) →
    ``("done", decision)``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = n + 1
        self.name = f"tas-consensus(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("propose", index, value)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase = state[0]
        if phase == "propose":
            _phase, index, value = state
            return (UPDATE, (1 + index, value))
        if phase == "tas":
            return (RMW, (0, "test_and_set", ()))
        if phase == "scan":
            return (SCAN, None)
        return (DECIDE, state[1])

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase = state[0]
        if phase == "propose":
            _phase, index, value = state
            return ("tas", index, value)
        if phase == "tas":
            _phase, index, value = state
            # observation is the flag's old value: unset (None on the
            # exploration's fresh memory, 0 on a TestAndSet object)
            # means we won.
            if not observation:
                return ("done", value)
            return ("scan", index, value)
        if phase == "scan":
            _phase, index, value = state
            others = [
                proposal
                for j, proposal in enumerate(observation[1:])
                if proposal is not None and j != index
            ]
            return ("done", others[0] if others else value)
        raise ProtocolError(f"{self.name}: advance on decided state")
