"""Run normal-form protocols on *raw registers* instead of native snapshots.

The paper's model is registers; atomic snapshots are assumed w.l.o.g.
because of the [AAD+93] construction.  This module closes the loop by
executing protocols against :class:`~repro.memory.afek.AfekMWSnapshot` —
the m-register multi-writer construction — so an entire execution bottoms
out in nothing but atomic reads and writes, and the space accounting is
literally a register count.

Because the construction is linearizable (machine-checked in
tests/analysis/test_linearizability.py), decisions under any schedule are
decisions the native-snapshot semantics could also produce; tests verify
task safety directly on register-level runs.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.errors import ValidationError
from repro.memory.afek import AfekMWSnapshot
from repro.protocols.base import DECIDE, SCAN, DECISION_TAG, Protocol
from repro.runtime.events import Annotate
from repro.runtime.process import Process
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import ExecutionResult, System


def register_protocol_body(
    protocol: Protocol,
    index: int,
    value: Any,
    snapshot: AfekMWSnapshot,
    max_own_ops: int = 10_000,
):
    """A process body driving one protocol process over the register-level
    snapshot construction (every scan/update becomes many register steps)."""
    protocol.check_index(index)

    def body(proc: Process):
        state = protocol.initial_state(index, value)
        ops = 0
        while ops < max_own_ops:
            kind, payload = protocol.poised(state)
            if kind == DECIDE:
                yield Annotate(
                    DECISION_TAG,
                    {"protocol": protocol.name, "index": index,
                     "value": payload},
                )
                return payload
            if kind == SCAN:
                view = yield from snapshot.scan(proc.pid)
                state = protocol.advance(state, view)
            else:
                component, written = payload
                yield from snapshot.update(proc.pid, component, written)
                state = protocol.advance(state, None)
            ops += 1
        return None

    return body


def run_protocol_on_registers(
    protocol: Protocol,
    inputs: Sequence[Any],
    scheduler: Scheduler,
    max_steps: int = 1_000_000,
    snapshot_name: str = "M",
) -> Tuple[System, ExecutionResult, AfekMWSnapshot]:
    """Execute a protocol instance with M built from m raw registers.

    Returns ``(system, result, snapshot)``; ``snapshot.register_count()``
    is exactly ``protocol.m`` — the space-complexity measure of the paper,
    observed on real registers.
    """
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n}, got {len(inputs)}"
        )
    system = System()
    snapshot = AfekMWSnapshot(snapshot_name, components=protocol.m)
    for index, value in enumerate(inputs):
        system.add_process(
            register_protocol_body(protocol, index, value, snapshot),
            name=f"{protocol.name}[{index}]@registers",
        )
    result = system.run(scheduler, max_steps=max_steps)
    return system, result, snapshot
