"""Protocols in the paper's scan/update normal form.

Section 2 of the paper assumes, without loss of generality, that a protocol
uses one m-component multi-writer atomic snapshot ``M`` which each process
*alternately* scans and updates until a scan lets it decide.  That normal
form is the :class:`~repro.protocols.base.Protocol` interface here: a pure
transition system over hashable states, which is what makes

* real execution (drive it on a shared snapshot through the runtime),
* *local* re-execution (a covering simulator revising a process's past), and
* exhaustive model checking (enumerate all interleavings of small instances)

all trivially consistent with each other.

Concrete protocols:

* :mod:`repro.protocols.simple` — trivial wait-free protocols used to
  exercise machinery (decide-own-input, decide-min-seen).
* :mod:`repro.protocols.racing` — round-racing obstruction-free consensus on
  n single-writer components (the upper bound matched by the paper's tight
  n-register lower bound for consensus).
* :mod:`repro.protocols.kset` — k-set agreement via value-partitioned racing
  groups, plus the register-truncation wrapper used by the falsifier
  experiments.
* :mod:`repro.protocols.approximate` — ε-approximate agreement: the
  n-component averaging protocol and a log₂(1/ε)-register bisection variant.
* :mod:`repro.protocols.commit_adopt` — the graded-agreement building
  block (exhaustively certified) and its rounds-of-CA consensus layering,
  exhibiting the unbounded-space trap.
* :mod:`repro.protocols.anonymous` — the folklore anonymous sweep
  algorithm, kept as an exhaustively-falsified case study.
* :mod:`repro.protocols.registers_runtime` — run any protocol on raw
  registers via the [AAD+93] multi-writer construction.
* :mod:`repro.protocols.rmw` — consensus over read-modify-write base
  objects (swap / test-and-set / compare-and-swap), the multi-primitive
  scenario families.
* :mod:`repro.protocols.largereg` — the Wei 2018-style
  large-register-from-binary-registers emulation and its regularity
  task.
"""

from repro.protocols.base import (
    DECIDE,
    RMW,
    SCAN,
    SYMMETRY_FULL,
    SYMMETRY_IDENTITY,
    UPDATE,
    Protocol,
    protocol_body,
    run_protocol,
    solo_run,
)
from repro.protocols.anonymous import AnonymousSweepConsensus
from repro.protocols.approximate import AveragingApprox, BisectionApprox
from repro.protocols.commit_adopt import (
    CommitAdopt,
    CommitAdoptConsensus,
    CommitAdoptTask,
)
from repro.protocols.kset import GroupedKSet, TruncatedProtocol
from repro.protocols.largereg import (
    LargeRegisterEmulation,
    RegularRegisterTask,
)
from repro.protocols.racing import RacingConsensus
from repro.protocols.rmw import CASConsensus, SwapConsensus, TASConsensus
from repro.protocols.simple import ImmediateDecide, MinSeen, RotatingWrites
from repro.protocols.tasks import ApproxAgreementTask, KSetAgreementTask

__all__ = [
    "Protocol",
    "SCAN",
    "UPDATE",
    "RMW",
    "DECIDE",
    "SYMMETRY_FULL",
    "SYMMETRY_IDENTITY",
    "protocol_body",
    "run_protocol",
    "solo_run",
    "ImmediateDecide",
    "MinSeen",
    "RotatingWrites",
    "RacingConsensus",
    "GroupedKSet",
    "TruncatedProtocol",
    "AveragingApprox",
    "BisectionApprox",
    "AnonymousSweepConsensus",
    "CommitAdopt",
    "CommitAdoptConsensus",
    "CommitAdoptTask",
    "SwapConsensus",
    "CASConsensus",
    "TASConsensus",
    "LargeRegisterEmulation",
    "RegularRegisterTask",
    "KSetAgreementTask",
    "ApproxAgreementTask",
]
