"""The scan/update normal-form protocol interface.

A protocol specifies, for each of its ``n`` processes, a deterministic state
machine over an ``m``-component snapshot ``M``:

* :meth:`Protocol.initial_state` gives the state of process ``i`` on input
  ``v``;
* :meth:`Protocol.poised` says what the process is poised to do in a state —
  ``(SCAN, None)``, ``(UPDATE, (j, value))``, ``(RMW, (j, op, args))``, or
  ``(DECIDE, output)``;
* :meth:`Protocol.advance` applies the step: for a scan, it absorbs the
  returned view; for an update, it moves past the write; for a
  read-modify-write, it absorbs the operation's return value (the old
  contents of component ``j`` — see :func:`repro.memory.rmw.apply_rmw`).

States must be *immutable and hashable* and transitions must be *pure*.
This buys three guarantees the rest of the library depends on:

1. executions are replayable (the runtime drives the same machine);
2. a covering simulator can re-run a process locally from a revised past
   (Section 4's hidden steps) and get exactly what the process "would have"
   done — see :func:`solo_run`;
3. small instances can be exhaustively model-checked, because a
   configuration (all states + M contents) is hashable.

Protocols must also alternate: after a scan the machine must be poised to
update or decide; after an update it must be poised to scan.  This is the
paper's w.l.o.g. normal form and :func:`protocol_body` enforces it.  The
normal form is stated for read/write memory; RMW steps are atomic
read-*and*-write steps, so they are exempt from the alternation check,
and protocols over non-read/write base objects (or emulation families
whose readers take consecutive scans) may opt out entirely by overriding
:meth:`Protocol.alternates`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import DivergenceError, ProtocolError, ValidationError
from repro.memory.rmw import RMWSnapshot, apply_rmw
from repro.memory.snapshot import AtomicSnapshot
from repro.runtime.events import Annotate, Invoke
from repro.runtime.process import Process
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import ExecutionResult, System

SCAN = "scan"
UPDATE = "update"
RMW = "rmw"
DECIDE = "decide"

#: Annotation tag recorded when a protocol process decides.
DECISION_TAG = "protocol.decision"

#: Symmetry groups a protocol may declare via :meth:`Protocol.symmetry`.
#: ``identity`` promises nothing; ``full`` declares the protocol anonymous
#: (any process permutation maps executions to executions).
SYMMETRY_IDENTITY = "identity"
SYMMETRY_FULL = "full"


class Protocol:
    """Base class for scan/update normal-form protocols.

    Attributes:
        n: number of processes the protocol is specified for.
        m: number of components of the snapshot M it uses (its space).
        name: human-readable protocol name.
    """

    n: int
    m: int
    name: str = "protocol"

    def initial_state(self, index: int, value: Any) -> Any:
        """State of process ``index`` with input ``value`` (poised to scan
        or update, never decided)."""
        raise NotImplementedError

    def poised(self, state: Any) -> Tuple[str, Any]:
        """What the process does next: ``(SCAN, None)``,
        ``(UPDATE, (component, value))``, ``(RMW, (component, op, args))``
        or ``(DECIDE, output)``."""
        raise NotImplementedError

    def advance(self, state: Any, observation: Any = None) -> Any:
        """The state after performing the poised step.

        ``observation`` is the scan's returned view for SCAN steps, the
        operation's return value (the component's old contents) for RMW
        steps, and must be ``None`` for UPDATE steps.  Calling this on a
        decided state is a :class:`~repro.errors.ProtocolError`.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Conveniences shared by all protocols
    # ------------------------------------------------------------------
    def decision(self, state: Any) -> Optional[Any]:
        """The decided value, or ``None`` if the state is not final."""
        kind, payload = self.poised(state)
        return payload if kind == DECIDE else None

    def check_index(self, index: int) -> None:
        """Validate a process index against n."""
        if not 0 <= index < self.n:
            raise ValidationError(
                f"{self.name}: process index {index} out of range (n={self.n})"
            )

    def symmetry(self) -> str:
        """The protocol's process-symmetry group.

        :data:`SYMMETRY_IDENTITY` (the default) promises nothing:
        processes may behave differently, so configurations that differ
        by a process permutation are not interchangeable.
        :data:`SYMMETRY_FULL` declares the protocol *anonymous*:
        ``initial_state`` validates but never stores the index and
        transitions depend only on the state, so any permutation of
        processes maps executions to executions.  Symmetry-reduced
        exploration (:mod:`repro.analysis.explore`) canonicalizes
        configurations under the declared group; declaring ``full`` for
        a protocol that is not anonymous makes that reduction unsound.
        """
        return SYMMETRY_IDENTITY

    def alternates(self) -> bool:
        """Whether the protocol promises scan/update alternation.

        ``True`` (the default) asserts the paper's w.l.o.g. normal form
        for the protocol's read/write steps, and :func:`protocol_body`
        enforces it as a sanity check.  RMW steps are exempt either way
        (an RMW is both the read and the write of its component).
        Emulation families whose machines legitimately take consecutive
        same-kind steps — e.g. the bit-probing reader of
        :class:`~repro.protocols.largereg.LargeRegisterEmulation` —
        override this to return ``False``.
        """
        return True


def protocol_body(
    protocol: Protocol,
    index: int,
    value: Any,
    snapshot: AtomicSnapshot,
    max_own_steps: Optional[int] = None,
) -> Callable[[Process], Generator]:
    """Build a runtime process body that executes one protocol process.

    The body alternates scans and updates on ``snapshot`` per the machine's
    poised steps, annotates its decision, and returns the decided value.
    ``max_own_steps`` bounds the process's own steps (used to surface
    livelock as :class:`~repro.errors.DivergenceError` data, not a hang).
    """
    protocol.check_index(index)

    check_alternation = protocol.alternates()

    def body(proc: Process) -> Generator:
        state = protocol.initial_state(index, value)
        taken = 0
        previous_kind = None
        while True:
            kind, payload = protocol.poised(state)
            if kind == DECIDE:
                yield Annotate(
                    DECISION_TAG,
                    {"protocol": protocol.name, "index": index, "value": payload},
                )
                return payload
            if (
                check_alternation
                and kind == previous_kind
                and kind != RMW
            ):
                raise ProtocolError(
                    f"{protocol.name}: process {index} broke scan/update "
                    f"alternation (two consecutive {kind} steps)"
                )
            if max_own_steps is not None and taken >= max_own_steps:
                return None  # give up silently; the runner reports divergence
            if kind == SCAN:
                view = yield Invoke(snapshot, "scan")
                state = protocol.advance(state, view)
            elif kind == UPDATE:
                component, written = payload
                yield Invoke(snapshot, "update", (component, written))
                state = protocol.advance(state, None)
            elif kind == RMW:
                component, op, args = payload
                result = yield Invoke(snapshot, "rmw", (component, op, args))
                state = protocol.advance(state, result)
            else:
                raise ProtocolError(
                    f"{protocol.name}: unknown poised kind {kind!r}"
                )
            previous_kind = kind
            taken += 1

    return body


def run_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    scheduler: Scheduler,
    max_steps: int = 100_000,
    snapshot_name: str = "M",
) -> Tuple[System, ExecutionResult]:
    """Execute a protocol instance end to end on a fresh system.

    ``inputs[i]`` is process i's input; processes get pids 0..len-1.
    Returns the system (for trace analysis) and the execution result, whose
    ``outputs`` map pids to decided values (absent for undecided processes).
    """
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n} processes, got "
            f"{len(inputs)} inputs"
        )
    system = System()
    # An RMWSnapshot behaves exactly like an AtomicSnapshot unless the
    # protocol issues RMW steps, so every protocol gets one.
    snapshot = RMWSnapshot(snapshot_name, components=protocol.m)
    for index, value in enumerate(inputs):
        system.add_process(
            protocol_body(protocol, index, value, snapshot),
            name=f"{protocol.name}[{index}]",
        )
    result = system.run(scheduler, max_steps=max_steps)
    return system, result


def solo_run(
    protocol: Protocol,
    state: Any,
    contents: Sequence[Any],
    stop_before_update_outside: Optional[Sequence[int]] = None,
    max_steps: int = 100_000,
) -> Tuple[Any, Tuple[Any, ...], Optional[Tuple[int, Any]], Optional[Any]]:
    """Locally run one protocol process solo from given snapshot contents.

    This is the paper's *local simulation*: the covering simulator runs a
    process ``p`` from a configuration where M's contents are a view ``V``
    it obtained from an atomic Block-Update, inserting hidden steps into the
    past.  Scans read, and updates write, a local copy of the contents; the
    run stops when

    * the process decides — returns its decision; or
    * it is poised to update a component **not** in
      ``stop_before_update_outside`` (when given) — the paper's "until it is
      about to perform an update to a component j ∉ {j_1..j_r}".
      With ``stop_before_update_outside=[]`` the run stops before the very
      first update (the base case: direct simulation until poised).

    Returns ``(state, final_contents, pending_update, decision)`` where
    ``pending_update`` is the ``(component, value)`` the process is poised
    to perform (or None if it decided).

    Raises :class:`~repro.errors.DivergenceError` if the process neither
    decides nor reaches a stopping update within ``max_steps`` — for an
    obstruction-free protocol this cannot happen (a solo run must decide).
    """
    local = list(contents)
    if len(local) != protocol.m:
        raise ValidationError(
            f"{protocol.name}: contents have {len(local)} components, "
            f"expected {protocol.m}"
        )
    allowed = None
    if stop_before_update_outside is not None:
        allowed = set(stop_before_update_outside)
    for _ in range(max_steps):
        kind, payload = protocol.poised(state)
        if kind == DECIDE:
            return state, tuple(local), None, payload
        if kind == SCAN:
            state = protocol.advance(state, tuple(local))
        elif kind == UPDATE:
            component, value = payload
            if allowed is not None and component not in allowed:
                return state, tuple(local), (component, value), None
            local[component] = value
            state = protocol.advance(state, None)
        elif kind == RMW:
            component, op, args = payload
            new_value, result = apply_rmw(op, local[component], args)
            if allowed is not None and component not in allowed:
                # An RMW writes its component, so it stops the run the
                # same way an update does; the pending write's value is
                # determined by the current contents.
                return state, tuple(local), (component, new_value), None
            local[component] = new_value
            state = protocol.advance(state, result)
        else:
            raise ProtocolError(f"{protocol.name}: unknown poised kind {kind!r}")
    raise DivergenceError(
        f"{protocol.name}: solo run did not decide or reach a stopping "
        f"update within {max_steps} steps",
        steps_taken=max_steps,
    )


def solo_run_trace(
    protocol: Protocol,
    state: Any,
    contents: Sequence[Any],
    stop_before_update_outside: Optional[Sequence[int]] = None,
    max_steps: int = 100_000,
) -> Tuple[Any, Tuple[Any, ...], Optional[Tuple[int, Any]], Optional[Any], List[Tuple]]:
    """Like :func:`solo_run`, but also returns the step list.

    The extra element is the sequence of steps taken, each
    ``("scan", view)``, ``("update", component, value)`` or
    ``("rmw", component, op, args, result)`` — the hidden execution ξ
    that the Lemma 28 correspondence checker splices into the simulated
    execution.
    """
    local = list(contents)
    if len(local) != protocol.m:
        raise ValidationError(
            f"{protocol.name}: contents have {len(local)} components, "
            f"expected {protocol.m}"
        )
    allowed = None
    if stop_before_update_outside is not None:
        allowed = set(stop_before_update_outside)
    steps: List[Tuple] = []
    for _ in range(max_steps):
        kind, payload = protocol.poised(state)
        if kind == DECIDE:
            return state, tuple(local), None, payload, steps
        if kind == SCAN:
            view = tuple(local)
            steps.append(("scan", view))
            state = protocol.advance(state, view)
        elif kind == UPDATE:
            component, value = payload
            if allowed is not None and component not in allowed:
                return state, tuple(local), (component, value), None, steps
            steps.append(("update", component, value))
            local[component] = value
            state = protocol.advance(state, None)
        elif kind == RMW:
            component, op, args = payload
            new_value, result = apply_rmw(op, local[component], args)
            if allowed is not None and component not in allowed:
                return state, tuple(local), (component, new_value), None, steps
            steps.append(("rmw", component, op, args, result))
            local[component] = new_value
            state = protocol.advance(state, result)
        else:
            raise ProtocolError(f"{protocol.name}: unknown poised kind {kind!r}")
    raise DivergenceError(
        f"{protocol.name}: solo run did not decide or reach a stopping "
        f"update within {max_steps} steps",
        steps_taken=max_steps,
    )


def decided_values(system: System) -> Dict[int, Any]:
    """pid -> decided value, read from decision annotations in the trace."""
    decisions: Dict[int, Any] = {}
    for event in system.trace.annotations(DECISION_TAG):
        decisions[event.pid] = event.payload["value"]
    return decisions
