"""Round-racing obstruction-free consensus on n single-writer components.

This is the classic snapshot-based obstruction-free consensus (the style of
[GR05, Bow11, Zhu15, BRS15] cited by the paper as the n-register upper
bound): each process owns one component holding a ``(round, value)`` pair
and repeatedly

1. writes its current pair to its component,
2. scans, and
3. either **decides** — it is at the maximum round ``r`` and every
   component at round ``r-1`` or ``r`` holds its value (the one-round
   lookback that protects a decided value from laggards), or **adopts** —
   jumps to the maximum round, taking the deterministically-chosen leader
   value, or **advances** — if its own pair is stable and undecidable, it
   moves to round ``r+1``.

Running solo, a process's round outruns every stale entry by two within two
iterations, so it decides: the protocol is obstruction-free.  Two processes
scheduled in lock-step can race rounds forever, which is exactly the
behaviour the paper's impossibility results require of any correct
register-based consensus.

The protocol uses ``m = n`` components, matching the paper's tight space
bound for consensus (Theorem 3 corollary: n registers are necessary; this
protocol shows they are sufficient).  Its safety is verified two ways in
the test suite: exhaustive model checking of small instances
(tests/analysis) and randomized schedule sweeps (tests/protocols).
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol


class RacingConsensus(Protocol):
    """Obstruction-free consensus for ``n`` processes, ``m = n`` components.

    State: ``(phase, index, round, value, decided_value)`` where phase is
    ``"update"`` or ``"scan"`` and ``decided_value`` is None until decision.
    Component ``i`` (owned by process ``i``) holds ``(round, value)``.
    Values must be totally ordered (ties at equal rounds resolve to the
    minimum value, which keeps the rule symmetric and deterministic).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = n
        self.name = f"racing-consensus(n={n})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        return ("update", index, 1, value, None)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, index, round_no, value, decided = state
        if decided is not None:
            return (DECIDE, decided[0])
        if phase == "update":
            return (UPDATE, (index, (round_no, value)))
        return (SCAN, None)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, index, round_no, value, decided = state
        if decided is not None:
            raise ProtocolError(f"{self.name}: advance on decided state")
        if phase == "update":
            return ("scan", index, round_no, value, decided)

        entries = [pair for pair in observation if pair is not None]
        max_round = max(entry[0] for entry in entries)  # own entry is present
        leaders = sorted(v for r, v in entries if r == max_round)
        recent = {v for r, v in entries if r >= max_round - 1}

        if round_no == max_round and round_no >= 2 and recent == {value}:
            # I am at the maximum round, past the first round, and every
            # component at round >= r-1 agrees with me: decide.  The r >= 2
            # requirement is essential: a process deciding at round 1 can
            # have seen nothing but itself, while another process covers a
            # component with a conflicting round-1 pair that the one-round
            # lookback of a later decision would miss (a genuine agreement
            # violation found by bounded-exhaustive model checking; see
            # tests/analysis/test_explore.py).
            return ("scan", index, round_no, value, (value,))
        if max_round > round_no:
            # Behind: jump to the front, adopting the leader value.
            return ("update", index, max_round, leaders[0], None)
        if leaders[0] != value:
            # Round conflict: adopt the deterministic leader at my round.
            return ("update", index, round_no, leaders[0], None)
        # Stable but blocked by a round-(r-1) dissent: advance the round.
        return ("update", index, round_no + 1, value, None)
