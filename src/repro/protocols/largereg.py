"""Large-register-from-small-registers emulation (Wei 2018 style).

:class:`~repro.memory.large.LargeRegister` is the runtime face of the
classic unary construction — an ℓ-valued single-writer regular register
from ℓ binary registers.  This module is its *bounded-exhaustive* face:
the same sweeps, expressed as a two-process protocol in the scan/update
normal form, so the falsifier can enumerate every interleaving of one
writer against one reader and certify the construction's key safety
property (a read never returns a value nobody wrote) — or, for the
deliberately broken variant, exhibit the interleaving that invents a
value out of thin air.

Memory component ``j`` models bit ``A[j]``; the exploration core roots
memory at all-``None``, so the pre-set initial bit is modelled lazily:
the reader treats ``None`` at the initial value's component as set, and
any landed write replaces the ``None``.

The reader's upward probe reads *one bit per scan* (it looks only at
its current probe component, modelling a single-bit read), which takes
consecutive SCAN steps; the writer's sweeps take consecutive UPDATE
steps.  Both are legitimate register programs that simply are not in
the alternation normal form, so the family opts out via
:meth:`~repro.protocols.base.Protocol.alternates`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol

#: The reader's decision when its probe falls off the end of the bit
#: array without seeing a set bit — the construction's failure mode,
#: reachable only in the ``safe=False`` variant.
BOTTOM = "bottom"

#: The writer's decision once all its writes have landed.
WRITER_DONE = "writer-done"


class LargeRegisterEmulation(Protocol):
    """Two-process emulation of the unary large-register construction.

    Process 0 is the writer: it performs ``writes`` (a sequence of
    values in ``0..domain-1``), each as "set bit ``v``, then clear bits
    ``v-1 .. 0`` downward", then decides :data:`WRITER_DONE`.  With
    ``safe=False`` the sweep is reversed to the broken
    "clear-then-set" order.

    Process 1 is the reader: it probes bits ``0, 1, ...`` upward, one
    scan per bit, and decides the index of the first set bit — or
    :data:`BOTTOM` if it falls off the end, which the safe sweep order
    makes unreachable (the writer sets the new bit before clearing
    lower ones, so an upward probe always crosses a set bit) and the
    broken order exposes.

    ``initial`` selects the pre-set bit (the register's initial value).
    Inputs are ignored (the workload is baked into the instance), so
    explore/fuzz this with ``inputs=[0, 0]``.
    """

    def __init__(
        self,
        domain: int,
        writes: Sequence[int],
        initial: int = 0,
        safe: bool = True,
    ) -> None:
        if domain < 1:
            raise ValidationError("domain must be at least 1")
        if not 0 <= initial < domain:
            raise ValidationError(
                f"initial value {initial} outside domain 0..{domain - 1}"
            )
        for value in writes:
            if not 0 <= value < domain:
                raise ValidationError(
                    f"write {value!r} outside domain 0..{domain - 1}"
                )
        self.n = 2
        self.m = domain
        self.domain = domain
        self.writes = tuple(writes)
        self.initial = initial
        self.safe = bool(safe)
        mode = "safe" if safe else "broken"
        self.name = (
            f"large-register(domain={domain}, writes={list(self.writes)}, "
            f"initial={initial}, {mode})"
        )

    def alternates(self) -> bool:
        """Sweeps take consecutive same-kind steps by design."""
        return False

    def _writer_steps(self) -> Tuple[Tuple[int, int], ...]:
        """The writer's flat ``(component, bit)`` sweep sequence."""
        steps: List[Tuple[int, int]] = []
        for value in self.writes:
            clears = [(j, 0) for j in range(value - 1, -1, -1)]
            if self.safe:
                steps.append((value, 1))
                steps.extend(clears)
            else:
                steps.extend(clears)
                steps.append((value, 1))
        return tuple(steps)

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        if index == 0:
            return ("write", self._writer_steps())
        return ("probe", 0)

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, payload = state
        if phase == "write":
            if payload:
                return (UPDATE, payload[0])
            return (DECIDE, WRITER_DONE)
        if phase == "probe":
            return (SCAN, None)
        return (DECIDE, payload)

    def _bit_set(self, position: int, bit: Any) -> bool:
        """Whether the probed bit reads as set (lazily pre-set initial)."""
        return bit == 1 or (bit is None and position == self.initial)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, payload = state
        if phase == "write":
            if not payload:
                raise ProtocolError(f"{self.name}: advance on decided state")
            return ("write", payload[1:])
        if phase == "probe":
            if self._bit_set(payload, observation[payload]):
                return ("done", payload)
            if payload + 1 < self.domain:
                return ("probe", payload + 1)
            return ("done", BOTTOM)
        raise ProtocolError(f"{self.name}: advance on decided state")


class RegularRegisterTask:
    """Safety condition for the large-register emulation.

    The reader (process 1) must return an actual value of the register:
    never :data:`BOTTOM` (the probe must not fall off the end), never
    ``None``, and always a member of ``{initial} ∪ writes`` (no value
    out of thin air).  The writer (process 0) may only decide
    :data:`WRITER_DONE`.  Full regularity (old-or-overlapping-write) is
    checked on the runtime composed object by the regularity harness;
    this checker judges what a decided-map can express.
    """

    def __init__(
        self, domain: int, writes: Sequence[int], initial: int = 0
    ) -> None:
        self.domain = domain
        self.writes = tuple(writes)
        self.initial = initial
        self.name = (
            f"regular-register(domain={domain}, "
            f"writes={list(self.writes)}, initial={initial})"
        )

    def check(self, inputs: Sequence[Any], outputs: Dict[int, Any]) -> List[str]:
        """Return violations of the reader's value validity (empty = safe)."""
        violations: List[str] = []
        legal = {self.initial} | set(self.writes)
        for pid, value in sorted(outputs.items()):
            if pid == 0:
                if value != WRITER_DONE:
                    violations.append(
                        f"writer decided {value!r}, expected "
                        f"{WRITER_DONE!r}"
                    )
                continue
            if value == BOTTOM or value is None:
                violations.append(
                    f"reader {pid} fell off the bit array (decided "
                    f"{value!r}): some interleaving shows no set bit"
                )
            elif value not in legal:
                violations.append(
                    f"reader {pid} decided {value!r}, which was never "
                    f"written (legal values: {sorted(legal)})"
                )
        return violations
