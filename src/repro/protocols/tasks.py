"""Task specifications: the correctness conditions protocols must satisfy.

A task checker takes the vector of inputs and the map of decided outputs and
returns a list of violation strings (empty = the execution satisfied the
task).  Checkers judge *safety* only; progress conditions (wait-freedom,
x-obstruction-freedom) are properties of schedules and are asserted by the
experiment harnesses instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.errors import ValidationError


class KSetAgreementTask:
    """k-set agreement: ≤ k distinct outputs, each the input of somebody.

    ``k = 1`` is consensus.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValidationError("k must be at least 1")
        self.k = k

    @property
    def name(self) -> str:
        return "consensus" if self.k == 1 else f"{self.k}-set agreement"

    def check(self, inputs: Sequence[Any], outputs: Dict[int, Any]) -> List[str]:
        """Return violations of validity and k-agreement (empty = safe)."""
        violations = []
        legal = set(inputs)
        distinct = set(outputs.values())
        for pid, value in sorted(outputs.items()):
            if value not in legal:
                violations.append(
                    f"validity: process {pid} decided {value!r}, which is "
                    f"not any process's input {sorted(map(repr, legal))}"
                )
        if len(distinct) > self.k:
            violations.append(
                f"{self.k}-agreement: {len(distinct)} distinct values decided: "
                f"{sorted(map(repr, distinct))}"
            )
        return violations


class ApproxAgreementTask:
    """ε-approximate agreement with inputs in {0, 1}.

    Outputs must lie in [0, 1], within the convex hull of the inputs, and
    pairwise within ε of each other.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0 < epsilon:
            raise ValidationError("epsilon must be positive")
        self.epsilon = epsilon
        self.name = f"{epsilon}-approximate agreement"

    def check(self, inputs: Sequence[Any], outputs: Dict[int, Any]) -> List[str]:
        """Return violations of validity and ε-agreement (empty = safe)."""
        violations = []
        for value in inputs:
            if value not in (0, 1):
                raise ValidationError(
                    f"approximate agreement inputs must be 0 or 1, got {value!r}"
                )
        low, high = min(inputs), max(inputs)
        for pid, value in sorted(outputs.items()):
            if not isinstance(value, (int, float)):
                violations.append(
                    f"validity: process {pid} decided non-numeric {value!r}"
                )
                continue
            if not low <= value <= high:
                violations.append(
                    f"validity: process {pid} decided {value}, outside the "
                    f"input hull [{low}, {high}]"
                )
        numeric = [
            v for v in outputs.values() if isinstance(v, (int, float))
        ]
        if numeric and max(numeric) - min(numeric) > self.epsilon + 1e-12:
            violations.append(
                f"{self.epsilon}-agreement: outputs span "
                f"[{min(numeric)}, {max(numeric)}], gap "
                f"{max(numeric) - min(numeric)} > ε"
            )
        return violations
