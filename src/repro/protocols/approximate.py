"""ε-approximate agreement protocols (Appendix D's upper-bound side).

Two wait-free protocols bracket the space/step trade-off the appendix's
lower bound lives in:

* :class:`AveragingApprox` — the n-single-writer-component protocol in the
  style of [DLP+86, ALS94]: asynchronous rounds, each round writes
  ``(round, value)`` and moves to the midpoint of the values seen at the
  leading round.  Atomic snapshots make round-r values nested-subset
  midpoints of round-(r-1) values, so the value range halves each round;
  after ``ceil(log2(1/ε))`` rounds all outputs are within ε.
* :class:`BisectionApprox` — the per-round-register protocol in the style
  of Schenk's ⌈log₂(1/ε)⌉ upper bound [Sch96]: two processes, one pair of
  single-writer components per round (our registers hold reals rather than
  Schenk's single bits, hence the honest factor 2: m = 2⌈log₂(1/ε)⌉).
  Whoever scans second in a round sees the other's value and moves to the
  midpoint, halving the gap every round.

Both decide after a fixed number of rounds, so their step complexity is
Θ(log(1/ε)) — the quantity experiment E6 measures against the Hoest–Shavit
log₃(1/ε) lower bound (Theorem 2), and the quantity the Appendix D
simulation beats with its ε-independent O(f(m)²) steps.
"""

from __future__ import annotations

import math
from typing import Any, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol


def rounds_for(epsilon: float) -> int:
    """Rounds needed to shrink a unit range below ``epsilon``: ⌈log₂(1/ε)⌉."""
    if not 0 < epsilon:
        raise ValidationError("epsilon must be positive")
    if epsilon >= 1:
        return 1
    return max(1, math.ceil(math.log2(1.0 / epsilon)))


class AveragingApprox(Protocol):
    """Wait-free ε-approximate agreement on n single-writer components.

    Component ``i`` holds process i's ``(round, value)``.  State:
    ``(phase, index, round, value)``; the process decides once its round
    exceeds the fixed round budget R = ⌈log₂(1/ε)⌉.
    """

    def __init__(self, n: int, epsilon: float) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        self.n = n
        self.m = n
        self.epsilon = epsilon
        self.rounds = rounds_for(epsilon)
        self.name = f"averaging-approx(n={n}, eps={epsilon})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        if value not in (0, 1):
            raise ValidationError("approximate agreement inputs must be 0 or 1")
        return ("update", index, 1, float(value))

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, index, round_no, value = state
        if round_no > self.rounds:
            return (DECIDE, value)
        if phase == "update":
            return (UPDATE, (index, (round_no, value)))
        return (SCAN, None)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, index, round_no, value = state
        if round_no > self.rounds:
            raise ProtocolError(f"{self.name}: advance on decided state")
        if phase == "update":
            return ("scan", index, round_no, value)
        entries = [entry for entry in observation if entry is not None]
        max_round = max(entry[0] for entry in entries)  # own entry is present
        leading = [v for r, v in entries if r == max_round]
        midpoint = (min(leading) + max(leading)) / 2.0
        if max_round > round_no:
            # Behind: jump to the leading round, adopting its midpoint
            # (a value inside the leading round's hull).
            return ("update", index, max_round, midpoint)
        # At the front: average the leading values and move up one round.
        return ("update", index, round_no + 1, midpoint)


class BisectionApprox(Protocol):
    """Two-process ε-approximate agreement with one component pair per round.

    Components ``2(r-1) + id`` hold process ``id``'s round-r value.  Each
    round: write, scan; if the other process's round-r component is filled,
    move to the midpoint.  In every interleaving at least one process's
    scan follows both writes, so the gap halves every round; after
    R = ⌈log₂(1/ε)⌉ rounds the processes decide.
    """

    def __init__(self, epsilon: float) -> None:
        self.n = 2
        self.epsilon = epsilon
        self.rounds = rounds_for(epsilon)
        self.m = 2 * self.rounds
        self.name = f"bisection-approx(eps={epsilon})"

    def initial_state(self, index: int, value: Any) -> Tuple:
        self.check_index(index)
        if value not in (0, 1):
            raise ValidationError("approximate agreement inputs must be 0 or 1")
        return ("update", index, 1, float(value))

    def _component(self, round_no: int, index: int) -> int:
        return 2 * (round_no - 1) + index

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, index, round_no, value = state
        if round_no > self.rounds:
            return (DECIDE, value)
        if phase == "update":
            return (UPDATE, (self._component(round_no, index), value))
        return (SCAN, None)

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, index, round_no, value = state
        if round_no > self.rounds:
            raise ProtocolError(f"{self.name}: advance on decided state")
        if phase == "update":
            return ("scan", index, round_no, value)
        other = observation[self._component(round_no, 1 - index)]
        if other is not None:
            value = (value + other) / 2.0
        return ("update", index, round_no + 1, value)
