"""Anonymous multi-writer racing — a case study in why [BRS15] is hard.

The paper's best upper bounds ([Zhu15, BRS15]) are *anonymous*: processes
have no identifiers and run identical code over multi-writer registers.
This module implements the natural anonymous algorithm — sweep your
``(round, value)`` pair across all m components, adopt the strongest pair
you see, decide on a clean sweep — with the pair order "higher round wins,
then smaller value wins" and a configurable decision round threshold.

Whether this natural algorithm is actually consensus is *not assumed*: the
test suite puts it in front of the bounded-exhaustive model checker.  The
outcome (see tests/protocols/test_anonymous.py) is itself a reproduction
artifact: at small scopes the checker certifies safety, and the
hand-constructible covering attack — a process that observed a full clean
sweep of the losing value parks a higher-round write over a decided
configuration — marks exactly the difficulty frontier that makes the
register-optimal anonymous constructions of [BRS15] a real contribution
rather than folklore.

Unlike :class:`~repro.protocols.racing.RacingConsensus` (single-writer,
verified), this protocol is **not** part of the verified upper-bound
suite; it exists to be studied.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import ProtocolError, ValidationError
from repro.protocols.base import DECIDE, SCAN, SYMMETRY_FULL, UPDATE, Protocol


def _stronger(a: Tuple[int, Any], b: Tuple[int, Any]) -> Tuple[int, Any]:
    """The adoption order: higher round wins; at equal rounds the smaller
    value wins (a deterministic, anonymous tie-break)."""
    if a[0] != b[0]:
        return a if a[0] > b[0] else b
    return a if a[1] <= b[1] else b


class AnonymousSweepConsensus(Protocol):
    """Anonymous sweep racing over m multi-writer components.

    State: ``(phase, round, value)`` — deliberately *index-free*: two
    processes with the same input are in identical states until they read
    different values, the anonymity condition of [FHS98, AGM02].

    Args:
        n: number of processes (affects nothing but the declared width).
        m: number of multi-writer components.
        decision_round: a clean sweep decides only from this round on
            (the analogue of racing consensus's ``r >= 2`` guard).
    """

    def __init__(self, n: int, m: Optional[int] = None,
                 decision_round: int = 2) -> None:
        if n < 1:
            raise ValidationError("n must be at least 1")
        if decision_round < 1:
            raise ValidationError("decision_round must be at least 1")
        self.n = n
        self.m = m if m is not None else n
        if self.m < 1:
            raise ValidationError("m must be at least 1")
        self.decision_round = decision_round
        self.name = (
            f"anonymous-sweep(n={n}, m={self.m}, d={decision_round})"
        )

    def initial_state(self, index: int, value: Any) -> Tuple:
        # Anonymous: the index is validated but never stored.
        self.check_index(index)
        return ("scan", 1, value)

    def symmetry(self) -> str:
        # Anonymous by construction: no state ever records the index, so
        # every process permutation maps executions to executions.
        return SYMMETRY_FULL

    def poised(self, state: Any) -> Tuple[str, Any]:
        phase, round_no, value = state
        if phase == "scan":
            return (SCAN, None)
        if phase == "done":
            return (DECIDE, value)
        component = int(phase.split(":")[1])
        return (UPDATE, (component, (round_no, value)))

    def advance(self, state: Any, observation: Any = None) -> Any:
        phase, round_no, value = state
        if phase == "done":
            raise ProtocolError(f"{self.name}: advance on decided state")
        if phase.startswith("write:"):
            return ("scan", round_no, value)

        # phase == "scan": absorb the view.
        pair = (round_no, value)
        for entry in observation:
            if entry is not None:
                pair = _stronger(pair, entry)
        round_no, value = pair
        stale = [
            component
            for component, entry in enumerate(observation)
            if entry != (round_no, value)
        ]
        if not stale:
            if round_no >= self.decision_round:
                return ("done", round_no, value)
            return ("write:0", round_no + 1, value)
        return (f"write:{stale[0]}", round_no, value)
