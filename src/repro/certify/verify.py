"""The independent certificate verifier.

:func:`verify` re-checks a certificate's claim from scratch: it
rebuilds the protocol/task/spec from registry descriptors, replays the
claimed schedule (or executions, or linearization order) through the
verifier's own replay machinery (:mod:`repro.certify.replay`), and
compares what actually happens with what the certificate claims.  It
never imports the searchers: :mod:`repro.analysis` is absent from this
module's import graph, and ``tests/certify`` enforces that with a
subprocess test.  That independence is the point — a campaign worker
that produced a result cannot also vouch for it.

Verification never raises on a bad certificate; it returns a
:class:`Verdict` whose ``reason`` is one of the ``REASON_*`` codes, so
callers (the CLI, the campaign merge fold, the adversarial tests) can
branch on *why* a claim was rejected.  Checks run in a fixed order —
structure, schema version, checksum, kind, descriptors, then the
semantic claim — so each mutation class maps to one stable reason.

``deep=True`` additionally re-executes sweep-run certificates (a full
seeded re-run instead of the fast decision-judgment check); it lazily
imports the runtime sweep entry points (:mod:`repro.core`), still never
the searchers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.certify.canonical import canonical_payload, content_checksum
from repro.certify.certificates import (
    CERTIFICATE_SCHEMA_VERSION,
    Certificate,
    KIND_COVERING,
    KIND_LINEARIZATION,
    KIND_SWEEP_RUN,
    KIND_VALENCE,
    KIND_VIOLATION,
    from_json,
    load_certificate,
    load_certificates,
)
from repro.certify.registry import build_protocol, build_spec, build_task
from repro.certify.replay import (
    decisions_of,
    replay_configuration,
    step_process,
    verifier_rmw,
)
from repro.errors import CertificateError, ReproError
from repro.protocols.base import DECIDE, RMW, SCAN, UPDATE

#: The certificate's claim re-checked out as stated.
REASON_OK = "ok"
#: The certificate is not even structurally a certificate.
REASON_MALFORMED = "malformed-certificate"
#: The checksum does not match the claim content.
REASON_CHECKSUM = "checksum-mismatch"
#: The schema version is not one this verifier understands.
REASON_SCHEMA_VERSION = "unsupported-schema-version"
#: The certificate kind is not one this verifier knows.
REASON_UNKNOWN_KIND = "unknown-kind"
#: A protocol/task/spec descriptor has no registered family here.
REASON_UNKNOWN_DESCRIPTOR = "unknown-descriptor"
#: The claimed schedule cannot be replayed (bad index, bad step).
REASON_SCHEDULE_INVALID = "schedule-invalid"
#: Replaying the schedule produced different decisions than claimed.
REASON_DECISIONS_MISMATCH = "decisions-mismatch"
#: The replayed decisions do not actually violate the claimed task.
REASON_NO_VIOLATION = "no-violation"
#: The claim disagrees with itself or the runtime rejected it.
REASON_CLAIM_MISMATCH = "claim-mismatch"
#: A valence witness schedule does not decide its claimed value.
REASON_VALENCE_MISMATCH = "valence-witness-mismatch"
#: The covering claim fails replay (stale log, landed write, no cover).
REASON_COVERING_INVALID = "covering-invalid"
#: The linearization order is not a valid witness for the history.
REASON_LINEARIZATION_INVALID = "linearization-order-invalid"
#: A deep re-execution of a sweep run disagreed with the claim.
REASON_RUN_MISMATCH = "run-mismatch"

#: Every reason a verdict can carry.
REASON_CODES = (
    REASON_OK,
    REASON_MALFORMED,
    REASON_CHECKSUM,
    REASON_SCHEMA_VERSION,
    REASON_UNKNOWN_KIND,
    REASON_UNKNOWN_DESCRIPTOR,
    REASON_SCHEDULE_INVALID,
    REASON_DECISIONS_MISMATCH,
    REASON_NO_VIOLATION,
    REASON_CLAIM_MISMATCH,
    REASON_VALENCE_MISMATCH,
    REASON_COVERING_INVALID,
    REASON_LINEARIZATION_INVALID,
    REASON_RUN_MISMATCH,
)


@dataclass(frozen=True)
class Verdict:
    """Structured accept/reject for one certificate.

    ``reason`` is always one of the ``REASON_*`` codes (``"ok"`` iff
    ``accepted``); ``detail`` is a human-readable elaboration.
    """

    accepted: bool
    reason: str
    detail: str = ""

    def __bool__(self) -> bool:
        return self.accepted


class _Reject(Exception):
    """Internal: unwind a checker with a (reason, detail) rejection."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


def _field(payload: Dict[str, Any], name: str, types) -> Any:
    value = payload.get(name)
    valid = isinstance(value, types)
    if valid and types is int and isinstance(value, bool):
        valid = False
    if not valid:
        raise _Reject(
            REASON_MALFORMED,
            f"payload field {name!r} missing or not "
            f"{getattr(types, '__name__', types)}",
        )
    return value


def _int_list(payload: Dict[str, Any], name: str) -> List[int]:
    value = _field(payload, name, list)
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool):
            raise _Reject(
                REASON_MALFORMED,
                f"payload field {name!r} must hold integers",
            )
    return value


def _pairs(payload: Dict[str, Any], name: str) -> List[List[Any]]:
    value = _field(payload, name, list)
    for item in value:
        if not isinstance(item, list) or len(item) != 2:
            raise _Reject(
                REASON_MALFORMED,
                f"payload field {name!r} must hold [key, value] pairs",
            )
    return value


def _protocol(payload: Dict[str, Any]):
    try:
        return build_protocol(_field(payload, "protocol", dict))
    except CertificateError as error:
        raise _Reject(REASON_UNKNOWN_DESCRIPTOR, str(error))


def _task(payload: Dict[str, Any]):
    try:
        return build_task(_field(payload, "task", dict))
    except CertificateError as error:
        raise _Reject(REASON_UNKNOWN_DESCRIPTOR, str(error))


def _replay(protocol, inputs, schedule) -> Tuple[Tuple, Tuple]:
    try:
        return replay_configuration(protocol, inputs, schedule)
    except ReproError as error:
        raise _Reject(REASON_SCHEDULE_INVALID, str(error))


def _canonical_decisions(decisions: Dict[int, Any]) -> List[List[Any]]:
    """A decisions map as canonically-sorted ``[index, value]`` pairs."""
    return [
        [index, canonical_payload(decisions[index])]
        for index in sorted(decisions)
    ]


def _equal(claimed: Any, actual: Any) -> bool:
    """Compare a claimed (canonical) value with a live Python value."""
    try:
        return canonical_payload(actual) == claimed
    except CertificateError:
        return False


# ---------------------------------------------------------------------
# Per-kind semantic checkers.  Each raises _Reject or returns None.
# ---------------------------------------------------------------------
def _check_violation(payload: Dict[str, Any], deep: bool) -> None:
    protocol = _protocol(payload)
    task = _task(payload)
    inputs = _field(payload, "inputs", list)
    schedule = _int_list(payload, "schedule")
    claimed = _pairs(payload, "decisions")
    states, _memory = _replay(protocol, inputs, schedule)
    decisions = decisions_of(protocol, states)
    if _canonical_decisions(decisions) != claimed:
        raise _Reject(
            REASON_DECISIONS_MISMATCH,
            f"replay decided {_canonical_decisions(decisions)!r}, "
            f"certificate claims {claimed!r}",
        )
    if not task.check(list(inputs), decisions):
        raise _Reject(
            REASON_NO_VIOLATION,
            "replayed decisions do not violate the claimed task",
        )


def _check_valence(payload: Dict[str, Any], deep: bool) -> None:
    protocol = _protocol(payload)
    inputs = _field(payload, "inputs", list)
    witnesses = _pairs(payload, "witnesses")
    if not witnesses:
        raise _Reject(
            REASON_VALENCE_MISMATCH, "certificate claims no witnesses"
        )
    for value, schedule in witnesses:
        if not isinstance(schedule, list):
            raise _Reject(
                REASON_MALFORMED, "witness schedule must be a list"
            )
        states, _memory = _replay(protocol, inputs, schedule)
        decided = []
        for state in states:
            kind, decision = protocol.poised(state)
            if kind == DECIDE:
                decided.append(decision)
        if not any(_equal(value, decision) for decision in decided):
            raise _Reject(
                REASON_VALENCE_MISMATCH,
                f"witness schedule {schedule!r} does not decide "
                f"{value!r} (decided: {decided!r})",
            )


def _check_covering(payload: Dict[str, Any], deep: bool) -> None:
    protocol = _protocol(payload)
    inputs = _field(payload, "inputs", list)
    budget = _field(payload, "per_process_budget", int)
    covered = _pairs(payload, "covered")
    poised_claims = _field(payload, "poised", list)
    blocked = set(_int_list(payload, "blocked"))
    executions = _pairs(payload, "executions")
    claimed_memory = _field(payload, "memory", list)

    poised_by_index: Dict[int, Tuple[int, Any]] = {}
    for entry in poised_claims:
        if not isinstance(entry, list) or len(entry) != 3:
            raise _Reject(
                REASON_MALFORMED,
                "poised entries must be [index, component, value]",
            )
        index, component, value = entry
        poised_by_index[index] = (component, value)
    covered_claim = {component: index for component, index in covered}
    if len(covered_claim) != len(covered):
        raise _Reject(
            REASON_COVERING_INVALID, "duplicate covered components"
        )
    if sorted(covered_claim.items()) != sorted(
        (component, index)
        for index, (component, _v) in poised_by_index.items()
    ):
        raise _Reject(
            REASON_COVERING_INVALID,
            "covered map and poised updates disagree",
        )

    ran = {index for index, _steps in executions}
    for index in set(poised_by_index) | blocked:
        if index not in ran:
            raise _Reject(
                REASON_COVERING_INVALID,
                f"process {index} is claimed frozen or blocked but has "
                f"no recorded execution",
            )
    if poised_by_index.keys() & blocked:
        raise _Reject(
            REASON_COVERING_INVALID,
            "a process cannot be both covering and blocked",
        )

    memory: List[Any] = [None] * protocol.m
    covering: Dict[int, int] = {}
    previous = -1
    for index, steps in executions:
        if not isinstance(index, int) or not 0 <= index < len(inputs):
            raise _Reject(
                REASON_COVERING_INVALID,
                f"execution index {index!r} out of range",
            )
        if index <= previous:
            raise _Reject(
                REASON_COVERING_INVALID,
                "executions must be recorded in ascending process order",
            )
        previous = index
        if not isinstance(steps, list):
            raise _Reject(
                REASON_MALFORMED, "execution steps must be a list"
            )
        try:
            state = protocol.initial_state(index, inputs[index])
        except ReproError as error:
            raise _Reject(REASON_COVERING_INVALID, str(error))
        for step in steps:
            if not isinstance(step, list) or not step:
                raise _Reject(
                    REASON_MALFORMED,
                    "execution steps must be [kind, ...] lists",
                )
            kind, observed = protocol.poised(state)
            if step[0] == SCAN:
                if kind != SCAN:
                    raise _Reject(
                        REASON_COVERING_INVALID,
                        f"process {index} logged a scan while poised "
                        f"to {kind}",
                    )
                state = protocol.advance(state, tuple(memory))
            elif step[0] == UPDATE:
                if len(step) != 3:
                    raise _Reject(
                        REASON_MALFORMED,
                        "update steps must be [kind, component, value]",
                    )
                if kind != UPDATE or observed[0] != step[1] or (
                    not _equal(step[2], observed[1])
                ):
                    raise _Reject(
                        REASON_COVERING_INVALID,
                        f"process {index} logged update {step[1:]} "
                        f"while poised to {kind} {observed!r}",
                    )
                if step[1] not in covering:
                    raise _Reject(
                        REASON_COVERING_INVALID,
                        f"process {index} let a write land on "
                        f"component {step[1]}, which no earlier "
                        f"process covers",
                    )
                memory[step[1]] = observed[1]
                state = protocol.advance(state, None)
            elif step[0] == RMW:
                if len(step) != 4:
                    raise _Reject(
                        REASON_MALFORMED,
                        "rmw steps must be [kind, component, op, args]",
                    )
                if kind != RMW or observed[0] != step[1] or (
                    observed[1] != step[2]
                ) or not _equal(step[3], list(observed[2])):
                    raise _Reject(
                        REASON_COVERING_INVALID,
                        f"process {index} logged rmw {step[1:]} "
                        f"while poised to {kind} {observed!r}",
                    )
                if step[1] not in covering:
                    raise _Reject(
                        REASON_COVERING_INVALID,
                        f"process {index} let an rmw land on "
                        f"component {step[1]}, which no earlier "
                        f"process covers",
                    )
                new_value, result = verifier_rmw(
                    observed[1], memory[step[1]], observed[2]
                )
                memory[step[1]] = new_value
                state = protocol.advance(state, result)
            else:
                raise _Reject(
                    REASON_MALFORMED,
                    f"unknown execution step kind {step[0]!r}",
                )
        kind, observed = protocol.poised(state)
        if index in poised_by_index:
            component, value = poised_by_index[index]
            if kind == UPDATE:
                poised_component, poised_value = observed
            elif kind == RMW:
                # The withheld write of an RMW is determined by the
                # memory at freeze time, which is exactly what the
                # verifier's replay holds here.
                poised_component = observed[0]
                poised_value, _result = verifier_rmw(
                    observed[1], memory[observed[0]], observed[2]
                )
            else:
                poised_component = poised_value = None
            if kind not in (UPDATE, RMW) or (
                poised_component != component
            ) or not _equal(value, poised_value):
                raise _Reject(
                    REASON_COVERING_INVALID,
                    f"process {index} is not poised to write "
                    f"component {component} with {value!r} "
                    f"(poised: {kind} {observed!r})",
                )
            if component in covering:
                raise _Reject(
                    REASON_COVERING_INVALID,
                    f"component {component} is covered twice",
                )
            covering[component] = index
        elif index in blocked:
            if kind != DECIDE and len(steps) < budget:
                raise _Reject(
                    REASON_COVERING_INVALID,
                    f"process {index} is claimed blocked but neither "
                    f"decided nor exhausted its {budget}-step budget",
                )
        else:
            raise _Reject(
                REASON_COVERING_INVALID,
                f"process {index} ran but is neither covering nor "
                f"blocked",
            )
    if not _equal(claimed_memory, list(memory)):
        raise _Reject(
            REASON_COVERING_INVALID,
            f"replayed memory {memory!r} differs from claimed "
            f"{claimed_memory!r}",
        )
    if sorted(covering.items()) != sorted(covered_claim.items()):
        raise _Reject(
            REASON_COVERING_INVALID,
            "replayed covering differs from claimed covered map",
        )


def _check_linearization(payload: Dict[str, Any], deep: bool) -> None:
    try:
        spec = build_spec(_field(payload, "spec", dict))
    except CertificateError as error:
        raise _Reject(REASON_UNKNOWN_DESCRIPTOR, str(error))
    history = _field(payload, "history", list)
    order = _field(payload, "order", list)
    by_id: Dict[str, Dict[str, Any]] = {}
    for entry in history:
        if not isinstance(entry, dict):
            raise _Reject(
                REASON_MALFORMED, "history entries must be objects"
            )
        for name in ("op_id", "op", "args", "result", "start", "end"):
            if name not in entry:
                raise _Reject(
                    REASON_MALFORMED,
                    f"history entry missing field {name!r}",
                )
        op_id = entry["op_id"]
        if not isinstance(op_id, str) or op_id in by_id:
            raise _Reject(
                REASON_MALFORMED,
                f"history op_id {op_id!r} missing or duplicated",
            )
        by_id[op_id] = entry
    if sorted(order) != sorted(by_id):
        raise _Reject(
            REASON_LINEARIZATION_INVALID,
            "order is not a permutation of the history's op_ids",
        )
    position = {op_id: rank for rank, op_id in enumerate(order)}
    for a in history:
        for b in history:
            if a["end"] < b["start"] and (
                position[a["op_id"]] > position[b["op_id"]]
            ):
                raise _Reject(
                    REASON_LINEARIZATION_INVALID,
                    f"order puts {a['op_id']} after {b['op_id']} "
                    f"despite real-time precedence",
                )
    state = spec.initial_state()
    for op_id in order:
        entry = by_id[op_id]
        try:
            state, result = spec.apply(
                state, entry["op"], entry["args"]
            )
        except (ReproError, TypeError, ValueError) as error:
            raise _Reject(
                REASON_LINEARIZATION_INVALID,
                f"operation {op_id} is not applicable: {error}",
            )
        if not _equal(entry["result"], result):
            raise _Reject(
                REASON_LINEARIZATION_INVALID,
                f"operation {op_id} returned {result!r} sequentially, "
                f"history recorded {entry['result']!r}",
            )


def _check_sweep_run(payload: Dict[str, Any], deep: bool) -> None:
    protocol = _protocol(payload)
    task = _task(payload)
    inputs = _field(payload, "inputs", list)
    seed = _field(payload, "seed", int)
    max_steps = _field(payload, "max_steps", int)
    run = _field(payload, "run", str)
    claimed = _pairs(payload, "decisions")
    decisions = {}
    for index, value in claimed:
        if not isinstance(index, int) or index in decisions:
            raise _Reject(
                REASON_MALFORMED,
                "decision pairs must have unique integer indices",
            )
        decisions[index] = value
    if not task.check(list(inputs), decisions):
        raise _Reject(
            REASON_NO_VIOLATION,
            "claimed decisions do not violate the claimed task",
        )
    if not deep:
        return
    # Deep mode: re-execute the seeded run and compare decisions.  The
    # sweep entry points live in repro.core / repro.runtime — still no
    # searcher import — and are loaded lazily to keep the fast path light.
    from repro.runtime.scheduler import RandomScheduler

    try:
        if run == "protocol":
            from repro.protocols.base import run_protocol

            _system, result = run_protocol(
                protocol, list(inputs), RandomScheduler(seed),
                max_steps=max_steps,
            )
            replayed = dict(result.outputs)
        elif run == "simulation":
            from repro.core.simulation import run_simulation

            outcome = run_simulation(
                protocol,
                k=_field(payload, "k", int),
                x=_field(payload, "x", int),
                inputs=list(inputs),
                scheduler=RandomScheduler(seed),
                max_steps=max_steps,
                aug_annotations=False,
            )
            replayed = dict(outcome.decisions)
        else:
            raise _Reject(
                REASON_MALFORMED, f"unknown sweep run kind {run!r}"
            )
    except _Reject:
        raise
    except ReproError as error:
        raise _Reject(
            REASON_RUN_MISMATCH,
            f"seeded re-execution failed: {type(error).__name__}: "
            f"{error}",
        )
    if _canonical_decisions(replayed) != sorted(
        [[index, value] for index, value in decisions.items()]
    ):
        raise _Reject(
            REASON_RUN_MISMATCH,
            f"seeded re-execution decided "
            f"{_canonical_decisions(replayed)!r}, certificate claims "
            f"{claimed!r}",
        )


_CHECKERS: Dict[str, Callable[[Dict[str, Any], bool], None]] = {
    KIND_VIOLATION: _check_violation,
    KIND_VALENCE: _check_valence,
    KIND_COVERING: _check_covering,
    KIND_LINEARIZATION: _check_linearization,
    KIND_SWEEP_RUN: _check_sweep_run,
}


def verify(certificate: Certificate, deep: bool = False) -> Verdict:
    """Re-check one certificate; never raises on a bad one.

    Check order is fixed: structure, schema version, checksum, kind,
    descriptors, semantic claim — so every rejection class has one
    stable reason code.  ``deep=True`` re-executes sweep runs instead
    of only judging their recorded decisions.
    """
    kind = getattr(certificate, "kind", None)
    version = getattr(certificate, "schema_version", None)
    payload = getattr(certificate, "payload", None)
    checksum = getattr(certificate, "checksum", None)
    if (
        not isinstance(kind, str)
        or not isinstance(version, int)
        or isinstance(version, bool)
        or not isinstance(payload, dict)
        or not isinstance(checksum, str)
    ):
        return Verdict(
            False, REASON_MALFORMED,
            "certificate is missing kind/schema_version/payload/checksum",
        )
    if version != CERTIFICATE_SCHEMA_VERSION:
        return Verdict(
            False, REASON_SCHEMA_VERSION,
            f"schema_version {version} is not the supported "
            f"{CERTIFICATE_SCHEMA_VERSION}",
        )
    try:
        expected = content_checksum(kind, version, payload)
    except CertificateError as error:
        return Verdict(False, REASON_MALFORMED, str(error))
    if expected != checksum:
        return Verdict(
            False, REASON_CHECKSUM,
            f"claim checksum is {expected}, certificate says {checksum}",
        )
    checker = _CHECKERS.get(kind)
    if checker is None:
        return Verdict(
            False, REASON_UNKNOWN_KIND,
            f"no verifier for certificate kind {kind!r}",
        )
    try:
        checker(payload, deep)
    except _Reject as rejection:
        return Verdict(False, rejection.reason, rejection.detail)
    except CertificateError as error:
        return Verdict(False, REASON_MALFORMED, str(error))
    except ReproError as error:
        return Verdict(
            False, REASON_CLAIM_MISMATCH,
            f"the runtime rejected the claim: {type(error).__name__}: "
            f"{error}",
        )
    return Verdict(True, REASON_OK)


def verify_json(text: str, deep: bool = False) -> Verdict:
    """Parse and verify one serialized certificate."""
    try:
        certificate = from_json(text)
    except CertificateError as error:
        return Verdict(False, REASON_MALFORMED, str(error))
    return verify(certificate, deep=deep)


def verify_file(path: str, deep: bool = False) -> Verdict:
    """Load and verify one certificate file."""
    try:
        certificate = load_certificate(path)
    except CertificateError as error:
        return Verdict(False, REASON_MALFORMED, str(error))
    return verify(certificate, deep=deep)


def verify_directory(
    directory: str, deep: bool = False
) -> List[Tuple[str, Verdict]]:
    """Verify every ``*.json`` certificate in a directory.

    Returns ``(path, verdict)`` pairs in sorted path order; an
    unreadable directory is a single malformed entry for the directory
    itself rather than an exception.
    """
    import os

    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        return [(directory, Verdict(False, REASON_MALFORMED, str(error)))]
    results = []
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        results.append((path, verify_file(path, deep=deep)))
    return results


def verify_certificates(
    certificates: Sequence[Certificate], deep: bool = False
) -> Verdict:
    """Verify a batch; returns the first rejection or an ``ok`` verdict.

    This is the campaign merge-fold hook: a chunk report's certificate
    list is either entirely acceptable or the chunk is rejected with
    the first failing verdict.
    """
    for certificate in certificates:
        verdict = verify(certificate, deep=deep)
        if not verdict.accepted:
            return verdict
    return Verdict(True, REASON_OK)
