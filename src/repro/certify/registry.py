"""Descriptor registry: name protocols, tasks, and specs in JSON.

A certificate must be self-contained, so it cannot embed live Python
objects — it names them.  This registry maps the protocol zoo, the task
checkers, and the sequential object specs to small JSON descriptors
(``{"family": …, …params}``) and back.  The *descriptor* is the trust
boundary: the verifier rebuilds the protocol from the descriptor with
its own constructor call, so a certificate can only ever talk about
protocols the verifying side also has.

Test gadgets (e.g. the DiamondTrap regression protocol) register their
own families with :func:`register_protocol`; an instance or descriptor
with no registered family is a
:class:`~repro.errors.CertificateError`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple, Type

from repro.errors import CertificateError

_PROTOCOLS: Dict[str, Tuple[
    Type, Callable[[Any], Dict[str, Any]],
    Callable[[Dict[str, Any]], Any],
]] = {}
_TASKS: Dict[str, Tuple[
    Type, Callable[[Any], Dict[str, Any]],
    Callable[[Dict[str, Any]], Any],
]] = {}


def register_protocol(
    family: str,
    cls: Type,
    describe: Callable[[Any], Dict[str, Any]],
    build: Callable[[Dict[str, Any]], Any],
) -> None:
    """Register a protocol family.

    ``describe(protocol)`` returns the family's parameters (without the
    ``family`` key); ``build(descriptor)`` reconstructs an instance.
    Re-registering a family replaces it (tests rely on this).
    """
    _PROTOCOLS[family] = (cls, describe, build)


def register_task(
    family: str,
    cls: Type,
    describe: Callable[[Any], Dict[str, Any]],
    build: Callable[[Dict[str, Any]], Any],
) -> None:
    """Register a task-checker family (same contract as protocols)."""
    _TASKS[family] = (cls, describe, build)


def _register_builtins() -> None:
    """Install descriptors for the protocol zoo and the task checkers."""
    from repro.protocols import (
        ApproxAgreementTask,
        AveragingApprox,
        BisectionApprox,
        CASConsensus,
        GroupedKSet,
        ImmediateDecide,
        KSetAgreementTask,
        LargeRegisterEmulation,
        MinSeen,
        RacingConsensus,
        RegularRegisterTask,
        RotatingWrites,
        SwapConsensus,
        TASConsensus,
        TruncatedProtocol,
    )

    register_protocol(
        "immediate-decide", ImmediateDecide,
        lambda p: {"n": p.n},
        lambda d: ImmediateDecide(d["n"]),
    )
    register_protocol(
        "min-seen", MinSeen,
        lambda p: {"n": p.n, "rounds": p.rounds},
        lambda d: MinSeen(d["n"], rounds=d["rounds"]),
    )
    register_protocol(
        "rotating-writes", RotatingWrites,
        lambda p: {"n": p.n, "m": p.m, "rounds": p.rounds},
        lambda d: RotatingWrites(d["n"], d["m"], rounds=d["rounds"]),
    )
    register_protocol(
        "racing-consensus", RacingConsensus,
        lambda p: {"n": p.n},
        lambda d: RacingConsensus(d["n"]),
    )
    register_protocol(
        "grouped-kset", GroupedKSet,
        lambda p: {"n": p.n, "k": p.k},
        lambda d: GroupedKSet(d["n"], d["k"]),
    )
    register_protocol(
        "truncated", TruncatedProtocol,
        lambda p: {
            "base": describe_protocol(p.base), "registers": p.m,
        },
        lambda d: TruncatedProtocol(
            build_protocol(d["base"]), d["registers"]
        ),
    )
    register_protocol(
        "averaging-approx", AveragingApprox,
        lambda p: {"n": p.n, "epsilon": p.epsilon},
        lambda d: AveragingApprox(d["n"], d["epsilon"]),
    )
    register_protocol(
        "bisection-approx", BisectionApprox,
        lambda p: {"epsilon": p.epsilon},
        lambda d: BisectionApprox(d["epsilon"]),
    )
    register_protocol(
        "swap-consensus", SwapConsensus,
        lambda p: {"n": p.n},
        lambda d: SwapConsensus(d["n"]),
    )
    register_protocol(
        "cas-consensus", CASConsensus,
        lambda p: {"n": p.n},
        lambda d: CASConsensus(d["n"]),
    )
    register_protocol(
        "tas-consensus", TASConsensus,
        lambda p: {"n": p.n},
        lambda d: TASConsensus(d["n"]),
    )
    register_protocol(
        "large-register", LargeRegisterEmulation,
        lambda p: {
            "domain": p.domain, "writes": list(p.writes),
            "initial": p.initial, "safe": p.safe,
        },
        lambda d: LargeRegisterEmulation(
            d["domain"], tuple(d["writes"]),
            initial=d["initial"], safe=d["safe"],
        ),
    )

    register_task(
        "kset-agreement", KSetAgreementTask,
        lambda t: {"k": t.k},
        lambda d: KSetAgreementTask(d["k"]),
    )
    register_task(
        "approx-agreement", ApproxAgreementTask,
        lambda t: {"epsilon": t.epsilon},
        lambda d: ApproxAgreementTask(d["epsilon"]),
    )
    register_task(
        "regular-register", RegularRegisterTask,
        lambda t: {
            "domain": t.domain, "writes": list(t.writes),
            "initial": t.initial,
        },
        lambda d: RegularRegisterTask(
            d["domain"], tuple(d["writes"]), initial=d["initial"]
        ),
    )


_register_builtins()


def _describe(obj: Any, table, noun: str) -> Dict[str, Any]:
    for family, (cls, describe, _build) in table.items():
        if type(obj) is cls:
            descriptor = dict(describe(obj))
            descriptor["family"] = family
            return descriptor
    raise CertificateError(
        f"no registered certificate descriptor for {noun} "
        f"{type(obj).__name__} ({getattr(obj, 'name', obj)!r}); "
        f"register it with repro.certify.registry"
    )


def _build(descriptor: Any, table, noun: str) -> Any:
    if not isinstance(descriptor, dict) or "family" not in descriptor:
        raise CertificateError(
            f"malformed {noun} descriptor: {descriptor!r}"
        )
    family = descriptor["family"]
    entry = table.get(family)
    if entry is None:
        raise CertificateError(
            f"unknown {noun} family {family!r} in certificate"
        )
    _cls, _describe, build = entry
    try:
        return build(descriptor)
    except CertificateError:
        raise
    except Exception as error:
        raise CertificateError(
            f"cannot rebuild {noun} from descriptor {descriptor!r}: "
            f"{type(error).__name__}: {error}"
        ) from error


def describe_protocol(protocol: Any) -> Dict[str, Any]:
    """The JSON descriptor naming a protocol instance."""
    return _describe(protocol, _PROTOCOLS, "protocol")


def build_protocol(descriptor: Dict[str, Any]) -> Any:
    """Rebuild a protocol instance from its descriptor."""
    return _build(descriptor, _PROTOCOLS, "protocol")


def describe_task(task: Any) -> Dict[str, Any]:
    """The JSON descriptor naming a task checker."""
    return _describe(task, _TASKS, "task")


def build_task(descriptor: Dict[str, Any]) -> Any:
    """Rebuild a task checker from its descriptor."""
    return _build(descriptor, _TASKS, "task")


#: One-word spec families: descriptor carries only the initial value.
_CELL_SPEC_FAMILIES = ("register", "swap", "test-and-set", "compare-and-swap")


def describe_spec(spec: Any) -> Dict[str, Any]:
    """The JSON descriptor naming a sequential object specification.

    Specs name their family via a ``kind`` attribute (``snapshot`` /
    ``register`` / ``swap`` / ``test-and-set`` / ``compare-and-swap``);
    both the analysis-side specs and the verifier's independent
    reimplementations (:mod:`repro.certify.replay`) carry it.  Objects
    without a ``kind`` are sniffed by shape for backward compatibility:
    an m-component snapshot (``.m``/``.initial``) or a single register
    (``.initial``).
    """
    kind = getattr(spec, "kind", None)
    if kind == "snapshot" or (kind is None and getattr(spec, "m", None) is not None):
        return {
            "family": "snapshot",
            "components": spec.m,
            "initial": spec.initial,
        }
    if kind in _CELL_SPEC_FAMILIES:
        return {"family": kind, "initial": spec.initial}
    if kind is None and hasattr(spec, "initial"):
        return {"family": "register", "initial": spec.initial}
    raise CertificateError(
        f"no certificate descriptor for spec {type(spec).__name__}"
    )


def build_spec(descriptor: Dict[str, Any]) -> Any:
    """Rebuild a spec as the verifier's *independent* implementation."""
    from repro.certify.replay import (
        SequentialCompareAndSwap,
        SequentialRegister,
        SequentialSnapshot,
        SequentialSwap,
        SequentialTestAndSet,
    )

    if not isinstance(descriptor, dict) or "family" not in descriptor:
        raise CertificateError(
            f"malformed spec descriptor: {descriptor!r}"
        )
    family = descriptor["family"]
    if family == "snapshot":
        return SequentialSnapshot(
            descriptor["components"], descriptor.get("initial")
        )
    if family == "register":
        return SequentialRegister(descriptor.get("initial"))
    if family == "swap":
        return SequentialSwap(descriptor.get("initial"))
    if family == "test-and-set":
        return SequentialTestAndSet(descriptor.get("initial", 0))
    if family == "compare-and-swap":
        return SequentialCompareAndSwap(descriptor.get("initial"))
    raise CertificateError(
        f"unknown spec family {family!r} in certificate"
    )
