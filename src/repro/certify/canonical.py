"""Canonical JSON: one byte string per certificate, on every machine.

Certificates are compared, checksummed, and deduplicated by their
serialized form, so that form must be a *pure function of the claim*:
independent of dict insertion order, of ``PYTHONHASHSEED``, of
tuple-vs-list representation choices, and of which process emitted it.
This module pins that encoding:

* payload values are normalized first (:func:`canonical_payload`):
  tuples become lists, dict keys must be strings and non-finite floats
  are rejected — anything without an unambiguous JSON form is a
  :class:`~repro.errors.CertificateError` at *emit* time, never a
  surprise at verify time;
* serialization (:func:`canonical_json`) uses sorted keys, compact
  separators, and ASCII escapes, so equal claims are byte-equal;
* the content checksum (:func:`content_checksum`) is the SHA-256 of the
  canonical serialization of ``{kind, schema_version, payload}`` — the
  claim, not the envelope, so a corrupted checksum field is detectable.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict

from repro.errors import CertificateError


def canonical_payload(value: Any) -> Any:
    """Normalize a payload value to its unambiguous JSON form.

    Tuples become lists, dicts are rebuilt with sorted string keys, and
    scalars must be ``None``/bool/int/str or a finite float.  Anything
    else (sets, arbitrary objects, NaN) raises
    :class:`~repro.errors.CertificateError`: a claim that cannot be
    serialized canonically cannot be certified.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise CertificateError(
                f"cannot canonicalize non-finite float {value!r}"
            )
        # -0.0 == 0.0 but json.dumps spells them "-0.0" and "0.0";
        # normalize so equal payloads cannot mint different checksums.
        if value == 0.0:
            return 0.0
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise CertificateError(
                    f"certificate payload keys must be strings, got "
                    f"{key!r}"
                )
        return {
            key: canonical_payload(value[key]) for key in sorted(value)
        }
    raise CertificateError(
        f"cannot canonicalize {type(value).__name__} value {value!r} "
        f"into a certificate payload"
    )


def canonical_json(value: Any) -> str:
    """Serialize an (already canonicalizable) value deterministically."""
    return json.dumps(
        canonical_payload(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_checksum(
    kind: str, schema_version: int, payload: Dict[str, Any]
) -> str:
    """SHA-256 over the canonical serialization of the claim itself.

    ``payload`` must already be JSON-shaped — the form
    :func:`canonical_payload` mints and ``json.loads`` produces.  For
    such values ``json.dumps`` with sorted keys *is* the canonical
    encoding, so the claim is serialized without re-walking it (this
    sits on the campaign gate's per-chunk hot path).  Anything that
    still refuses to serialize (NaN from a hand-edited file, an
    arbitrary object in a hand-built certificate) raises
    :class:`~repro.errors.CertificateError`.
    """
    try:
        claim = json.dumps(
            {
                "kind": kind,
                "schema_version": schema_version,
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise CertificateError(
            f"cannot serialize claim canonically: {error}"
        ) from error
    if "-0.0" in claim:
        # Negative zero is spelled "-0.0" by json.dumps but equals 0.0;
        # fold it through canonical_payload so equal claims always hash
        # equal.  (Over-matching on "-0.0" inside a string value just
        # re-serializes to the same bytes.)
        claim = json.dumps(
            {
                "kind": kind,
                "schema_version": schema_version,
                "payload": canonical_payload(payload),
            },
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    return hashlib.sha256(claim.encode("ascii")).hexdigest()
