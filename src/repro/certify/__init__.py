"""Self-certifying results: witness certificates + independent verifier.

Every headline result the engine produces — a violating schedule, a
covering configuration, a valence witness, a linearization order, a
violating sweep run — can be emitted as a compact, schema-versioned,
checksummed *certificate* (:mod:`repro.certify.certificates`) and
re-checked by a small verifier (:mod:`repro.certify.verify`) that
replays the claim through the runtime without importing any searcher.
This turns campaign workers into untrusted provers: the merge fold can
reject any chunk whose certificates fail
(``run_campaign(verify_certificates=True)``), so multi-host scale-out
does not require trusting the exploration core.

See docs/CERTIFICATES.md for the format, the verifier contract, and
the threat model.
"""

from repro.certify.canonical import (
    canonical_json,
    canonical_payload,
    content_checksum,
)
from repro.certify.certificates import (
    CERTIFICATE_KINDS,
    CERTIFICATE_SCHEMA_VERSION,
    Certificate,
    KIND_COVERING,
    KIND_LINEARIZATION,
    KIND_SWEEP_RUN,
    KIND_VALENCE,
    KIND_VIOLATION,
    certificate_filename,
    from_json,
    load_certificate,
    load_certificates,
    make_certificate,
    sorted_certificates,
    to_json,
    write_certificates,
)
from repro.certify.emit import (
    covering_certificate,
    exploration_certificates,
    fuzz_certificates,
    linearization_certificate,
    sweep_run_certificate,
    valence_certificate,
    violation_certificate,
)
from repro.certify.registry import (
    build_protocol,
    build_spec,
    build_task,
    describe_protocol,
    describe_spec,
    describe_task,
    register_protocol,
    register_task,
)
from repro.certify.verify import (
    REASON_CODES,
    Verdict,
    verify,
    verify_certificates,
    verify_directory,
    verify_file,
    verify_json,
)

__all__ = [
    "CERTIFICATE_KINDS",
    "CERTIFICATE_SCHEMA_VERSION",
    "Certificate",
    "KIND_COVERING",
    "KIND_LINEARIZATION",
    "KIND_SWEEP_RUN",
    "KIND_VALENCE",
    "KIND_VIOLATION",
    "REASON_CODES",
    "Verdict",
    "build_protocol",
    "build_spec",
    "build_task",
    "canonical_json",
    "canonical_payload",
    "certificate_filename",
    "content_checksum",
    "covering_certificate",
    "describe_protocol",
    "describe_spec",
    "describe_task",
    "exploration_certificates",
    "from_json",
    "fuzz_certificates",
    "linearization_certificate",
    "load_certificate",
    "load_certificates",
    "make_certificate",
    "register_protocol",
    "register_task",
    "sorted_certificates",
    "sweep_run_certificate",
    "to_json",
    "valence_certificate",
    "verify",
    "verify_certificates",
    "verify_directory",
    "verify_file",
    "verify_json",
    "violation_certificate",
    "write_certificates",
]
