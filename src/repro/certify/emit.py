"""Certificate emitters for the search and sweep producers.

Each emitter turns one already-found result into a
:class:`~repro.certify.certificates.Certificate` whose payload is
self-contained: registry descriptors instead of live objects, concrete
schedules/executions/orders instead of report references.  The
producers (:mod:`repro.analysis.fuzz`, :mod:`repro.analysis.explore`,
:mod:`repro.analysis.covering`, :mod:`repro.analysis.bivalence`,
:mod:`repro.analysis.linearizability`, :mod:`repro.core.sweep`) call
these when asked for ``certificates=True``; the independent verifier
(:mod:`repro.certify.verify`) re-checks the claims without importing
any of them.

Emission is deterministic: payload content is a pure function of the
result (schedules, decisions, descriptors), canonicalization pins all
ordering, and so two processes emitting the same result produce
byte-identical certificate JSON — a property the round-trip tests
assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.certify.canonical import canonical_json
from repro.certify.certificates import (
    Certificate,
    KIND_COVERING,
    KIND_LINEARIZATION,
    KIND_SWEEP_RUN,
    KIND_VALENCE,
    KIND_VIOLATION,
    make_certificate,
    sorted_certificates,
)
from repro.certify.registry import (
    describe_protocol,
    describe_spec,
    describe_task,
)
from repro.certify.replay import replay_decisions

#: ``source`` tags a violation certificate can carry.
SOURCE_FUZZ = "fuzz"
SOURCE_FUZZ_SHRINK = "fuzz-shrink"
SOURCE_EXPLORE = "explore"


def violation_certificate(
    protocol,
    inputs: Sequence[Any],
    task,
    schedule: Sequence[int],
    source: str,
    run_index: Optional[int] = None,
) -> Certificate:
    """Certify one violating schedule.

    The claimed decisions are recomputed here through the verifier's
    own replay, so the certificate states exactly what an honest
    verifier will see.
    """
    decisions = replay_decisions(protocol, inputs, schedule)
    payload: Dict[str, Any] = {
        "protocol": describe_protocol(protocol),
        "task": describe_task(task),
        "inputs": list(inputs),
        "schedule": [int(index) for index in schedule],
        "decisions": [
            [index, decisions[index]] for index in sorted(decisions)
        ],
        "source": source,
    }
    if run_index is not None:
        payload["run_index"] = int(run_index)
    return make_certificate(KIND_VIOLATION, payload)


def fuzz_certificates(
    protocol, inputs: Sequence[Any], task, report
) -> List[Certificate]:
    """Certificates for a :class:`~repro.analysis.fuzz.FuzzReport`.

    One per retained violating run, plus one for the shrunken schedule
    when the report carries a shrink result (tagged ``fuzz-shrink`` and
    stamped with the shrunken run's index, so merges can drop and
    re-derive it deterministically).
    """
    certificates = [
        violation_certificate(
            protocol, inputs, task, record.schedule, SOURCE_FUZZ,
            run_index=record.run_index,
        )
        for record in report.violations
    ]
    if report.minimized is not None and report.violations:
        certificates.append(
            violation_certificate(
                protocol, inputs, task, report.minimized.minimized,
                SOURCE_FUZZ_SHRINK,
                run_index=report.violations[0].run_index,
            )
        )
    return sorted_certificates(certificates)


def exploration_certificates(
    protocol, inputs: Sequence[Any], task, report
) -> List[Certificate]:
    """Certificates for an exploration report's counterexample, if any."""
    if report.counterexample is None:
        return []
    return [
        violation_certificate(
            protocol, inputs, task, report.counterexample,
            SOURCE_EXPLORE,
        )
    ]


def covering_certificate(
    protocol,
    inputs: Sequence[Any],
    report,
    target: int,
    per_process_budget: int,
) -> Certificate:
    """Certify a covering configuration with its reserving executions.

    The payload carries, per process that ran, the exact scan/update
    steps it took (updates that *landed* on already-covered
    components), so the verifier can replay each reserving execution
    against its own memory and confirm every frozen process really is
    poised on a fresh, distinct component.
    """
    payload = {
        "protocol": describe_protocol(protocol),
        "inputs": list(inputs),
        "target": int(target),
        "per_process_budget": int(per_process_budget),
        "covered": [
            [component, report.covered[component]]
            for component in sorted(report.covered)
        ],
        "poised": [
            [index] + list(report.poised_values[index])
            for index in sorted(report.poised_values)
        ],
        "blocked": sorted(report.blocked),
        "memory": list(report.memory),
        "executions": [
            [index, [list(step) for step in report.executions[index]]]
            for index in sorted(report.executions)
        ],
    }
    return make_certificate(KIND_COVERING, payload)


def valence_certificate(
    protocol, inputs: Sequence[Any], report
) -> Certificate:
    """Certify a valence report's witnesses (value -> deciding schedule).

    Witnesses are ordered by their canonical JSON form, not by dict
    insertion order, so emission is independent of search traversal.
    """
    witnesses = [
        [value, list(schedule)]
        for value, schedule in report.witnesses.items()
    ]
    witnesses.sort(key=canonical_json)
    payload = {
        "protocol": describe_protocol(protocol),
        "inputs": list(inputs),
        "witnesses": witnesses,
    }
    return make_certificate(KIND_VALENCE, payload)


def linearization_certificate(
    spec, history: Sequence[Any], order: Sequence[str]
) -> Certificate:
    """Certify a linearization witness order for a concurrent history.

    ``history`` holds
    :class:`~repro.analysis.linearizability.CompletedOperation`-shaped
    records (duck-typed); ``order`` is the witness op-id sequence.
    """
    entries = [
        {
            "op_id": operation.op_id,
            "pid": operation.pid,
            "op": operation.op,
            "args": list(operation.args),
            "result": operation.result,
            "start": operation.start,
            "end": operation.end,
        }
        for operation in history
    ]
    entries.sort(key=lambda entry: entry["op_id"])
    payload = {
        "spec": describe_spec(spec),
        "history": entries,
        "order": list(order),
    }
    return make_certificate(KIND_LINEARIZATION, payload)


def sweep_run_certificate(
    protocol,
    inputs: Sequence[Any],
    task,
    seed: int,
    decisions: Dict[int, Any],
    run: str = "protocol",
    max_steps: int = 100_000,
    k: Optional[int] = None,
    x: Optional[int] = None,
) -> Certificate:
    """Certify one violating sweep run as a *judgment* certificate.

    The fast claim is "these recorded decisions violate this task" —
    cheap to verify (one ``task.check``) and independent of scheduler
    internals.  The seed and step bound ride along so ``deep=True``
    verification can re-execute the run and compare decisions.
    """
    payload: Dict[str, Any] = {
        "run": run,
        "protocol": describe_protocol(protocol),
        "task": describe_task(task),
        "inputs": list(inputs),
        "seed": int(seed),
        "max_steps": int(max_steps),
        "decisions": [
            [index, decisions[index]] for index in sorted(decisions)
        ],
    }
    if run == "simulation":
        payload["k"] = int(k)
        payload["x"] = int(x)
    return make_certificate(KIND_SWEEP_RUN, payload)
