"""Command-line interface for witness certificates.

``repro certify emit`` runs a named scenario through the ordinary
searchers with certificate emission turned on and writes the resulting
certificates to a directory; ``repro certify verify`` loads certificate
files and replays them through the independent verifier
(:mod:`repro.certify.verify`), reporting accept/reject per file.

Exit codes follow the drill contract (docs/CERTIFICATES.md): ``0`` —
every certificate verified; ``1`` — at least one certificate rejected
(or a scenario produced no violation to certify); ``2`` — usage error
or no certificate files found.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List


def _scenario_falsify(runs: int, seed: int) -> List[Any]:
    """Fuzz the Theorem 3 falsifier workload; certify its violations."""
    from repro.analysis.fuzz import fuzz_protocol
    from repro.protocols.kset import TruncatedProtocol
    from repro.protocols.racing import RacingConsensus
    from repro.protocols.tasks import KSetAgreementTask

    report = fuzz_protocol(
        TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
        KSetAgreementTask(1), runs=runs, schedule_length=40, seed=seed,
        certificates=True,
    )
    return list(report.certificates)


def _scenario_sweep(runs: int, seed: int) -> List[Any]:
    """Seed-sweep the under-provisioned consensus; certify the extreme."""
    from repro.core.sweep import sweep_protocol
    from repro.protocols.kset import TruncatedProtocol
    from repro.protocols.racing import RacingConsensus
    from repro.protocols.tasks import KSetAgreementTask

    report = sweep_protocol(
        TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
        list(range(seed, seed + runs)), task=KSetAgreementTask(1),
        max_steps=400_000, certificates=True,
    )
    return list(report.certificates)


def _scenario_explore(runs: int, seed: int) -> List[Any]:
    """Exhaustively find the canonical counterexample; certify it."""
    from repro.analysis.explore import explore_protocol
    from repro.protocols.kset import TruncatedProtocol
    from repro.protocols.racing import RacingConsensus
    from repro.protocols.tasks import KSetAgreementTask

    report = explore_protocol(
        TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
        KSetAgreementTask(1), max_configs=max(runs, 1) * 1_000,
        certificates=True,
    )
    return list(report.certificates)


def _scenario_valence(runs: int, seed: int) -> List[Any]:
    """Certify the bivalence witness of racing consensus."""
    from repro.analysis.bivalence import classify_valence
    from repro.protocols.racing import RacingConsensus

    report = classify_valence(RacingConsensus(2), [0, 1], certificates=True)
    return list(report.certificates)


def _scenario_covering(runs: int, seed: int) -> List[Any]:
    """Certify a covering configuration of racing consensus."""
    from repro.analysis.covering import build_covering
    from repro.protocols.racing import RacingConsensus

    report = build_covering(RacingConsensus(3), [0, 1, 1], certificates=True)
    return list(report.certificates)


#: Named emit scenarios: each runs a searcher with certificates on.
SCENARIOS: Dict[str, Callable[[int, int], List[Any]]] = {
    "falsify": _scenario_falsify,
    "sweep": _scenario_sweep,
    "explore": _scenario_explore,
    "valence": _scenario_valence,
    "covering": _scenario_covering,
}


def cmd_certify_emit(args) -> int:
    """Run a scenario and write its certificates to ``--out``."""
    from repro.certify.certificates import write_certificates

    certificates = SCENARIOS[args.scenario](args.runs, args.seed)
    if not certificates:
        print(f"scenario {args.scenario!r} produced no certificates "
              f"(no violation found?)", file=sys.stderr)
        return 1
    paths = write_certificates(args.out, certificates)
    for path in paths:
        print(path)
    print(f"{len(paths)} certificate(s) written to {args.out}")
    return 0


def _certificate_files(args) -> List[str]:
    """Resolve the file list for ``certify verify``."""
    if args.dir is not None:
        if not os.path.isdir(args.dir):
            print(f"error: not a directory: {args.dir}", file=sys.stderr)
            return []
        return [
            os.path.join(args.dir, name)
            for name in sorted(os.listdir(args.dir))
            if name.endswith(".json")
        ]
    return list(args.paths)


def cmd_certify_verify(args) -> int:
    """Verify certificate files; exit non-zero on any rejection."""
    from repro.certify.verify import verify_file

    files = _certificate_files(args)
    if not files:
        print("error: no certificate files to verify", file=sys.stderr)
        return 2
    rejected = 0
    for path in files:
        try:
            verdict = verify_file(path, deep=args.deep)
        except OSError as exc:
            print(f"REJECT {path}: unreadable ({exc})")
            rejected += 1
            continue
        if verdict.accepted:
            print(f"ok     {path}")
        else:
            detail = f" ({verdict.detail})" if verdict.detail else ""
            print(f"REJECT {path}: {verdict.reason}{detail}")
            rejected += 1
    total = len(files)
    print(f"{total - rejected}/{total} certificate(s) verified"
          + (f", {rejected} REJECTED" if rejected else ""))
    return 1 if rejected else 0


def add_certify_parser(sub) -> None:
    """Install the ``certify`` subcommand on the top-level CLI."""
    certify = sub.add_parser(
        "certify", help="emit and verify witness certificates"
    )
    certify_sub = certify.add_subparsers(
        dest="certify_command", required=True
    )

    emit = certify_sub.add_parser(
        "emit", help="run a scenario and write its certificates"
    )
    emit.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="falsify",
    )
    emit.add_argument("--runs", type=int, default=100)
    emit.add_argument("--seed", type=int, default=0)
    emit.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory to write certificate files into",
    )
    emit.set_defaults(func=cmd_certify_emit)

    verify = certify_sub.add_parser(
        "verify", help="replay certificate files through the verifier"
    )
    verify.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="certificate files to verify",
    )
    verify.add_argument(
        "--dir", default=None, metavar="DIR",
        help="verify every *.json certificate in DIR",
    )
    verify.add_argument(
        "--deep", action="store_true",
        help="also re-execute judgment certificates (slower)",
    )
    verify.set_defaults(func=cmd_certify_verify)
