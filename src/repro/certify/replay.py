"""The verifier's own replay machinery — independent of the searchers.

Certificate verification must not trust the code that produced the
claim, so this module re-implements, from the
:class:`~repro.protocols.base.Protocol` contract alone, the few
execution semantics a verifier needs:

* schedule replay (:func:`replay_configuration`,
  :func:`replay_decisions`) with the library-wide replay convention —
  a scheduled step by an already-decided process is a no-op, and
  ``None`` decision payloads are "undecided" to a task checker;
* sequential object specs (:class:`SequentialSnapshot`,
  :class:`SequentialRegister`, :class:`SequentialSwap`,
  :class:`SequentialTestAndSet`, :class:`SequentialCompareAndSwap`) for
  re-checking linearization orders;
* its own read-modify-write semantics (:func:`verifier_rmw`) for
  replaying RMW poised steps — re-derived from the operations'
  definitions, not imported from the substrate the claims are about.

It deliberately imports nothing from :mod:`repro.analysis`: the module
graph of :mod:`repro.certify.verify` is the trust boundary that makes
campaign workers untrusted, and a test enforces it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import CertificateError
from repro.protocols.base import DECIDE, RMW, SCAN, UPDATE, Protocol


def verifier_rmw(
    op: str, current: Any, args: Sequence[Any]
) -> Tuple[Any, Any]:
    """The verifier's own read-modify-write semantics.

    Returns ``(new_value, result)``; every operation returns the old
    value.  This mirrors :func:`repro.memory.rmw.apply_rmw` by
    *definition* (swap installs its argument; test-and-set installs 1;
    compare-and-swap installs ``new`` iff the old value equals
    ``expected``) rather than by import, keeping the replay independent
    of the substrate under test.
    """
    if op == "swap":
        (value,) = args
        return value, current
    if op == "test_and_set":
        if args:
            raise CertificateError("test_and_set takes no arguments")
        return 1, current
    if op == "compare_and_swap":
        expected, new = args
        if current == expected:
            return new, current
        return current, current
    raise CertificateError(f"unknown read-modify-write operation {op!r}")


def initial_configuration(
    protocol: Protocol, inputs: Sequence[Any]
) -> Tuple[Tuple, Tuple]:
    """``(states, memory)`` where every process holds its input and M
    is fresh — the configuration all certified schedules start from."""
    if len(inputs) > protocol.n:
        raise CertificateError(
            f"{protocol.name}: {len(inputs)} inputs for n={protocol.n}"
        )
    states = tuple(
        protocol.initial_state(index, value)
        for index, value in enumerate(inputs)
    )
    return states, (None,) * protocol.m


def step_process(
    protocol: Protocol, states: Tuple, memory: Tuple, index: int
) -> Tuple[Tuple, Tuple]:
    """One replay step of process ``index`` (pure; decided = no-op)."""
    if not 0 <= index < len(states):
        raise CertificateError(
            f"schedule step {index} out of range for {len(states)} "
            f"processes"
        )
    state = states[index]
    kind, payload = protocol.poised(state)
    if kind == DECIDE:
        return states, memory
    if kind == SCAN:
        new_state = protocol.advance(state, memory)
        new_memory = memory
    elif kind == UPDATE:
        component, value = payload
        new_state = protocol.advance(state, None)
        new_memory = (
            memory[:component] + (value,) + memory[component + 1:]
        )
    elif kind == RMW:
        component, op, args = payload
        if not 0 <= component < len(memory):
            raise CertificateError(
                f"{protocol.name}: RMW component {component} out of range"
            )
        new_value, result = verifier_rmw(op, memory[component], args)
        new_state = protocol.advance(state, result)
        new_memory = (
            memory[:component] + (new_value,) + memory[component + 1:]
        )
    else:
        raise CertificateError(
            f"{protocol.name}: unknown poised kind {kind!r}"
        )
    return states[:index] + (new_state,) + states[index + 1:], new_memory


def replay_configuration(
    protocol: Protocol, inputs: Sequence[Any], schedule: Sequence[int]
) -> Tuple[Tuple, Tuple]:
    """The ``(states, memory)`` a schedule reaches from the start."""
    states, memory = initial_configuration(protocol, inputs)
    for index in schedule:
        states, memory = step_process(protocol, states, memory, index)
    return states, memory


def decisions_of(protocol: Protocol, states: Tuple) -> Dict[int, Any]:
    """index -> decided value for decided processes; ``None`` payloads
    are dropped (they read as "undecided" to every task checker)."""
    decisions: Dict[int, Any] = {}
    for index, state in enumerate(states):
        kind, payload = protocol.poised(state)
        if kind == DECIDE and payload is not None:
            decisions[index] = payload
    return decisions


def replay_decisions(
    protocol: Protocol, inputs: Sequence[Any], schedule: Sequence[int]
) -> Dict[int, Any]:
    """Replay a schedule and report the decisions it produces."""
    states, _memory = replay_configuration(protocol, inputs, schedule)
    return decisions_of(protocol, states)


class SequentialSnapshot:
    """Independent sequential spec of an m-component atomic snapshot.

    Shape-compatible with the analysis-side spec (``.m``, ``.initial``,
    ``initial_state``, ``apply``) but owned by the verifier.
    """

    kind = "snapshot"

    def __init__(self, components: int, initial: Any = None) -> None:
        self.m = components
        self.initial = initial

    def initial_state(self) -> Tuple:
        """All components at the initial value."""
        return (self.initial,) * self.m

    def apply(
        self, state: Tuple, op: str, args: Sequence[Any]
    ) -> Tuple[Tuple, Any]:
        """Apply ``scan`` or ``update`` to a state; returns
        ``(new_state, result)``."""
        if op == "scan":
            return state, state
        if op == "update":
            component, value = args
            if not 0 <= component < self.m:
                raise CertificateError(
                    f"snapshot update to component {component} out of "
                    f"range (m={self.m})"
                )
            new_state = (
                state[:component] + (value,) + state[component + 1:]
            )
            return new_state, None
        raise CertificateError(f"snapshot spec has no operation {op!r}")


class SequentialRegister:
    """Independent sequential spec of a single read/write register."""

    kind = "register"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The register's initial value."""
        return self.initial

    def apply(
        self, state: Any, op: str, args: Sequence[Any]
    ) -> Tuple[Any, Any]:
        """Apply ``read`` or ``write`` to a state; returns
        ``(new_state, result)``."""
        if op == "read":
            return state, state
        if op == "write":
            (value,) = args
            return value, value
        raise CertificateError(f"register spec has no operation {op!r}")


class SequentialSwap:
    """Independent sequential spec of a swap object."""

    kind = "swap"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The cell's initial value."""
        return self.initial

    def apply(
        self, state: Any, op: str, args: Sequence[Any]
    ) -> Tuple[Any, Any]:
        """Apply ``read`` or ``swap`` to a state; returns
        ``(new_state, result)``."""
        if op == "read":
            return state, state
        if op == "swap":
            (value,) = args
            return value, state
        raise CertificateError(f"swap spec has no operation {op!r}")


class SequentialTestAndSet:
    """Independent sequential spec of a (resettable) test-and-set bit."""

    kind = "test-and-set"

    def __init__(self, initial: Any = 0) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The bit's initial value."""
        return self.initial

    def apply(
        self, state: Any, op: str, args: Sequence[Any]
    ) -> Tuple[Any, Any]:
        """Apply ``read``, ``test_and_set`` or ``reset`` to a state;
        returns ``(new_state, result)``."""
        if op == "read":
            return state, state
        if op == "test_and_set":
            return 1, state
        if op == "reset":
            return self.initial, self.initial
        raise CertificateError(
            f"test-and-set spec has no operation {op!r}"
        )


class SequentialCompareAndSwap:
    """Independent sequential spec of a compare-and-swap object."""

    kind = "compare-and-swap"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The cell's initial value."""
        return self.initial

    def apply(
        self, state: Any, op: str, args: Sequence[Any]
    ) -> Tuple[Any, Any]:
        """Apply ``read`` or ``compare_and_swap`` to a state; returns
        ``(new_state, result)``."""
        if op == "read":
            return state, state
        if op == "compare_and_swap":
            expected, new = args
            if state == expected:
                return new, state
            return state, state
        raise CertificateError(f"CAS spec has no operation {op!r}")


def apply_sequentially(
    spec, operations: Sequence[Tuple[str, Sequence[Any]]]
) -> List[Any]:
    """Apply operations in order to a fresh spec state; returns results."""
    state = spec.initial_state()
    results = []
    for op, args in operations:
        state, result = spec.apply(state, op, args)
        results.append(result)
    return results
