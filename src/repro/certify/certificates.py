"""Schema-versioned result certificates with checksummed canonical JSON.

A certificate is a compact, self-contained, machine-checkable claim
about a search result — "this schedule violates this task on this
protocol", "these processes cover these components after these steps",
"this value is decidable from here", "this operation order linearizes
this history".  The searcher that found the result emits it; the
independent verifier (:mod:`repro.certify.verify`) re-checks it without
trusting — or importing — the searcher.

On disk a certificate is one canonical-JSON object::

    {"checksum": "…", "kind": "…", "payload": {…}, "schema_version": 1}

with the checksum computed over ``{kind, schema_version, payload}``
(:mod:`repro.certify.canonical`).  Files are written with the same
atomic tmp → fsync → rename discipline as the campaign checkpoint
journal, so a crash mid-write never leaves a half-written certificate.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.certify.canonical import canonical_json, canonical_payload
from repro.errors import CertificateError

#: Version stamp of the certificate layout; bump on payload changes.
CERTIFICATE_SCHEMA_VERSION = 1

#: A replayable violating schedule (fuzz / shrink / explore).
KIND_VIOLATION = "violation-schedule"
#: A covering configuration plus the reserving executions reaching it.
KIND_COVERING = "covering"
#: A valence witness: schedules deciding each claimed value.
KIND_VALENCE = "valence"
#: A linearization order for a concurrent history.
KIND_LINEARIZATION = "linearization"
#: A seed-sweep violating run: recorded decisions plus the task verdict.
KIND_SWEEP_RUN = "sweep-run"

#: Every kind this build can emit and verify.
CERTIFICATE_KINDS = (
    KIND_VIOLATION,
    KIND_COVERING,
    KIND_VALENCE,
    KIND_LINEARIZATION,
    KIND_SWEEP_RUN,
)


@dataclass(frozen=True, eq=True)
class Certificate:
    """One schema-versioned, checksummed claim.

    ``payload`` is already in canonical form (tuples flattened to
    lists, dict keys sorted) — :func:`make_certificate` guarantees it —
    so equality of certificates is equality of claims.
    """

    kind: str
    schema_version: int
    payload: Dict[str, Any]
    checksum: str

    @property
    def sort_key(self):
        """Canonical total order: kind, then claim checksum."""
        return (self.kind, self.checksum)


def _require_string_keys(value: Any) -> None:
    """Reject non-string dict keys anywhere in a payload, cheaply.

    ``json.dumps`` silently *coerces* int/bool/None keys to strings,
    so this walk (no allocations, no rebuilding) is what keeps the
    emit-time contract of :mod:`repro.certify.canonical`: a claim that
    cannot be serialized unambiguously is refused at mint time.
    """
    if type(value) is dict:
        for key, item in value.items():
            if type(key) is not str:
                raise CertificateError(
                    f"certificate payload keys must be strings, got "
                    f"{key!r}"
                )
            _require_string_keys(item)
    elif type(value) in (list, tuple):
        for item in value:
            _require_string_keys(item)


def make_certificate(kind: str, payload: Dict[str, Any]) -> Certificate:
    """Build a certificate: canonicalize the payload, stamp the checksum.

    Canonicalization is a single serialization pass — ``json.dumps``
    with sorted keys already flattens tuples to lists and refuses NaN
    and non-JSON objects, and parsing the claim back yields the
    canonical payload object — because minting sits on the campaign
    hot path (one certificate per chunk, per sweep).
    """
    if kind not in CERTIFICATE_KINDS:
        raise CertificateError(f"unknown certificate kind {kind!r}")
    if not isinstance(payload, dict):
        raise CertificateError(
            f"certificate payload must be an object, got "
            f"{type(payload).__name__}"
        )
    _require_string_keys(payload)
    try:
        claim = json.dumps(
            {
                "kind": kind,
                "schema_version": CERTIFICATE_SCHEMA_VERSION,
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise CertificateError(
            f"cannot serialize claim canonically: {error}"
        ) from error
    if "-0.0" in claim:
        # Rare path: the payload may hold a negative-zero float, which
        # json.dumps spells "-0.0" while the equal 0.0 is spelled "0.0".
        # Re-serialize through canonical_payload (which folds -0.0 into
        # 0.0) so equal payloads always mint equal checksums.  The
        # substring test can also hit "-0.0" inside a string value;
        # re-serializing is then a no-op, so over-matching is harmless.
        claim = json.dumps(
            {
                "kind": kind,
                "schema_version": CERTIFICATE_SCHEMA_VERSION,
                "payload": canonical_payload(payload),
            },
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    return Certificate(
        kind=kind,
        schema_version=CERTIFICATE_SCHEMA_VERSION,
        payload=json.loads(claim)["payload"],
        checksum=hashlib.sha256(claim.encode("ascii")).hexdigest(),
    )


def to_json(certificate: Certificate) -> str:
    """The certificate's canonical one-line JSON serialization."""
    return canonical_json({
        "kind": certificate.kind,
        "schema_version": certificate.schema_version,
        "payload": certificate.payload,
        "checksum": certificate.checksum,
    })


def from_json(text: str) -> Certificate:
    """Parse a serialized certificate, validating structure only.

    Checksum, schema version, and the claim itself are deliberately
    *not* validated here — a tampered certificate must still load so
    the verifier can reject it with a structured reason instead of an
    exception.  Raises :class:`~repro.errors.CertificateError` only
    when the text is not even shaped like a certificate.
    """
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise CertificateError(
            f"certificate is not valid JSON: {error}"
        ) from error
    if not isinstance(record, dict):
        raise CertificateError(
            f"certificate must be a JSON object, got "
            f"{type(record).__name__}"
        )
    kind = record.get("kind")
    version = record.get("schema_version")
    payload = record.get("payload")
    checksum = record.get("checksum")
    if not isinstance(kind, str):
        raise CertificateError("certificate has no string 'kind'")
    if not isinstance(version, int) or isinstance(version, bool):
        raise CertificateError(
            "certificate has no integer 'schema_version'"
        )
    if not isinstance(payload, dict):
        raise CertificateError("certificate has no object 'payload'")
    if not isinstance(checksum, str):
        raise CertificateError("certificate has no string 'checksum'")
    return Certificate(
        kind=kind, schema_version=version,
        payload=canonical_payload(payload), checksum=checksum,
    )


def sorted_certificates(
    certificates: Sequence[Certificate],
) -> List[Certificate]:
    """Canonically sort and checksum-deduplicate a certificate list."""
    by_key: Dict[Any, Certificate] = {}
    for certificate in certificates:
        by_key.setdefault(certificate.sort_key, certificate)
    return [by_key[key] for key in sorted(by_key)]


def certificate_filename(certificate: Certificate) -> str:
    """Stable file name: kind plus a claim-checksum prefix."""
    return f"{certificate.kind}-{certificate.checksum[:16]}.json"


def _write_atomic(path: str, text: str) -> None:
    """tmp → fsync → rename, same discipline as the checkpoint journal."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_certificates(
    directory: str, certificates: Sequence[Certificate]
) -> List[str]:
    """Write certificates into ``directory``, one atomic file each.

    Returns the written paths in canonical order.  File names are
    content-addressed (:func:`certificate_filename`), so re-emitting
    the same claims is idempotent.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for certificate in sorted_certificates(certificates):
        path = os.path.join(
            directory, certificate_filename(certificate)
        )
        _write_atomic(path, to_json(certificate) + "\n")
        paths.append(path)
    return paths


def load_certificate(path: str) -> Certificate:
    """Load one certificate file (structure-validated only)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise CertificateError(
            f"cannot read certificate {path!r}: {error}"
        ) from error
    return from_json(text)


def load_certificates(directory: str) -> List[Certificate]:
    """Load every ``*.json`` certificate in a directory, sorted by name."""
    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        raise CertificateError(
            f"cannot read certificate directory {directory!r}: {error}"
        ) from error
    return [
        load_certificate(os.path.join(directory, name))
        for name in names if name.endswith(".json")
    ]
