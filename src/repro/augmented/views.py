"""Local (unshared) functions of the Figure 1 implementation.

A *history* ``h`` is the result of a scan of the single-writer snapshot
``H``: a tuple with one entry per process rank, where entry ``i`` is the
tuple of update triples ``(component, value, timestamp)`` that process
``q_i`` has appended so far.  All functions here are pure: they take scan
results and compute values locally, exactly like lines 1–13 of Figure 1.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ValidationError
from repro.timestamps import VectorTimestamp

#: One update triple: (component index of M, value, VectorTimestamp).
Triple = Tuple[int, Any, VectorTimestamp]

#: One process's history: the triples it has appended to its component of H.
History = Tuple[Triple, ...]

#: A full scan result of H: one history per process rank.
ScanResult = Tuple[History, ...]


class _YieldSign:
    """The ☡ value returned by possibly-non-atomic Block-Updates.

    A singleton; compare with ``is YIELD``.  It is falsy so call sites can
    write ``if view:`` to mean "the Block-Update was atomic".
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "YIELD(☡)"

    def __bool__(self) -> bool:
        return False


YIELD = _YieldSign()


def history_count(history: History) -> int:
    """``#h_i``: the number of Block-Updates recorded in one history.

    Each Block-Update appends one or more triples sharing a single fresh
    timestamp, so the count is the number of distinct timestamps.
    """
    return len({triple[2] for triple in history})


def history_counts(h: ScanResult) -> Tuple[int, ...]:
    """``(#h_0, ..., #h_k)`` for a full scan result."""
    return tuple(history_count(component) for component in h)


def timestamp_for_counts(
    counts: Tuple[int, ...], rank: int
) -> VectorTimestamp:
    """New-timestamp from already-computed history counts (lines 1–5).

    Split out of :func:`new_timestamp` so callers that need the counts
    anyway (Block-Update needs ``#h`` again at line 30) compute them once.
    """
    counts = list(counts)
    if not 0 <= rank < len(counts):
        raise ValidationError(f"rank {rank} out of range for {len(counts)} histories")
    counts[rank] += 1
    return VectorTimestamp(counts)


def new_timestamp(h: ScanResult, rank: int) -> VectorTimestamp:
    """New-timestamp(h) by the process of rank ``rank`` (lines 1–5).

    Sets ``t_j = #h_j`` for ``j != rank`` and ``t_rank = #h_rank + 1``.
    By Corollary 11 the result is lexicographically larger than every
    timestamp contained in ``h``.
    """
    return timestamp_for_counts(history_counts(h), rank)


def get_view(h: ScanResult, m: int) -> Tuple[Any, ...]:
    """Get-view(h) (lines 6–13): the value vector of ``M`` encoded in ``h``.

    For each component ``j`` of M, the value whose triple carries the
    lexicographically largest timestamp among all triples for ``j`` anywhere
    in ``h``; ``None`` (the paper's ⊥) where no triple exists.
    """
    best: list = [None] * m
    best_ts: list = [None] * m
    for history in h:
        for component, value, ts in history:
            if not 0 <= component < m:
                raise ValidationError(
                    f"triple component {component} out of range for m={m}"
                )
            if best_ts[component] is None or ts > best_ts[component]:
                best[component] = value
                best_ts[component] = ts
    return tuple(best)


def is_prefix(h: ScanResult, other: ScanResult) -> bool:
    """True iff each history of ``h`` is a prefix of the matching history.

    This is the (partial) prefix order on scan results from Appendix B;
    Observation 5 says results of scans of H are totally ordered by it.
    """
    if len(h) != len(other):
        raise ValidationError("scan results cover different process sets")
    return all(
        len(mine) <= len(theirs) and theirs[: len(mine)] == mine
        for mine, theirs in zip(h, other)
    )


def is_proper_prefix(h: ScanResult, other: ScanResult) -> bool:
    """True iff ``h`` is a prefix of ``other`` and they differ somewhere."""
    return is_prefix(h, other) and h != other


def timestamps_in(h: ScanResult):
    """All timestamps contained in a scan result (with multiplicity removed)."""
    return {triple[2] for history in h for triple in history}
