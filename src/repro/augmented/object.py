"""The augmented snapshot implementation — Figure 1, line by line.

The object is shared by k+1 processes ``q_0, ..., q_k`` (given as an ordered
pid list; *rank* = position = the paper's identifier, and lower ranks take
precedence).  It uses:

* ``H`` — a (k+1)-component single-writer atomic snapshot; component ``i``
  holds the history of q_i's Updates as a tuple of triples
  ``(component_of_M, value, timestamp)``.
* ``L[i][j]`` for ``i != j`` — unbounded arrays of single-writer
  single-reader registers; q_i writes ``L[i][j][b]`` to help q_j determine
  the return value of its b'th Block-Update.

``scan`` and ``block_update`` are generator methods (drive them with
``yield from`` inside a process body); every primitive step they take is one
scheduling step, so adversaries interleave the implementation freely.
Begin/end markers are emitted as zero-cost annotations; the Appendix B
analysis (:mod:`repro.augmented.linearization`) consumes them to compute
execution intervals and linearization points.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Sequence, Tuple

from repro.augmented.views import (
    YIELD,
    get_view,
    history_count,
    is_proper_prefix,
    timestamp_for_counts,
)
from repro.errors import ModelError, ValidationError
from repro.memory.registers import RegisterArray
from repro.memory.snapshot import SingleWriterSnapshot
from repro.runtime.events import Annotate, Invoke

#: Annotation tag used for operation begin/end markers.
AUG_OP_TAG = "aug.op"


class AugmentedSnapshot:
    """An m-component augmented multi-writer snapshot for k+1 processes.

    Args:
        name: shared-object name prefix (must be system-unique).
        components: m, the number of components of the simulated snapshot M.
        pids: the k+1 sharing processes *in identifier order*; ``pids[0]``
            is q_0, whose Block-Updates always take precedence.

    Progress (Lemma 23): ``block_update`` is wait-free; ``scan`` is
    non-blocking — it can only be delayed by concurrent Block-Updates.

    ``annotate=False`` suppresses the zero-cost begin/end markers; only the
    Appendix B trace analysis (:mod:`repro.augmented.linearization`) reads
    them, so callers that never run it (e.g. aggregate sweeps that discard
    traces) skip the per-operation marker overhead.
    """

    def __init__(
        self,
        name: str,
        components: int,
        pids: Sequence[int],
        register_level: bool = False,
        annotate: bool = True,
    ) -> None:
        if components < 1:
            raise ValidationError("augmented snapshot needs at least one component")
        if len(pids) < 1:
            raise ValidationError("augmented snapshot needs at least one process")
        self.name = name
        self.m = components
        self.pids = list(pids)
        self._rank = {pid: i for i, pid in enumerate(self.pids)}
        if len(self._rank) != len(self.pids):
            raise ValidationError("duplicate pids")
        self.register_level = register_level
        self.annotate = annotate
        # H[i] = history of q_i, initially the empty tuple (the paper's ⊥).
        if register_level:
            # "From registers all the way down": back H with the [AAD+93]
            # wait-free single-writer construction, so every step of the
            # augmented object is an atomic read or write of a register.
            # (The Appendix B trace analysis needs native H steps and is
            # unavailable in this mode; correctness of the composition
            # follows from the construction's machine-checked
            # linearizability.)
            from repro.memory.afek import AfekSnapshot

            self.H = None
            self._h_afek = AfekSnapshot(
                f"{name}.H", writers=self.pids, initial=()
            )
        else:
            self.H = SingleWriterSnapshot(
                f"{name}.H", writers=self.pids, initial=()
            )
        # L[i][j]: written by q_i, read by q_j (ranks), one unbounded array each.
        self.L: Dict[Tuple[int, int], RegisterArray] = {}
        for i, pid_i in enumerate(self.pids):
            for j, pid_j in enumerate(self.pids):
                if i != j:
                    self.L[(i, j)] = RegisterArray(
                        f"{name}.L[{i},{j}]",
                        initial=None,
                        writer=pid_i,
                        reader=pid_j,
                    )
        self._op_counter = 0
        self.yield_counts: Dict[int, int] = {i: 0 for i in range(len(self.pids))}
        self.atomic_counts: Dict[int, int] = {i: 0 for i in range(len(self.pids))}
        # Component histories are immutable tuples and H hands back the same
        # tuple object for an unchanged component, so counting Block-Updates
        # per rank only needs recomputing for components that actually grew.
        self._count_cache: list = [(None, 0)] * len(self.pids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k_plus_1(self) -> int:
        return len(self.pids)

    def rank_of(self, pid: int) -> int:
        """The identifier (priority) of ``pid`` within this object."""
        try:
            return self._rank[pid]
        except KeyError:
            raise ModelError(f"pid {pid} does not share {self.name}") from None

    def register_count(self) -> int:
        """Registers used so far: H's components plus touched L cells."""
        h_registers = (
            self._h_afek.register_count()
            if self.register_level
            else self.H.register_count()
        )
        return h_registers + sum(
            arr.register_count() for arr in self.L.values()
        )

    # ------------------------------------------------------------------
    # H access — one native atomic step, or the [AAD+93] construction.
    # ------------------------------------------------------------------
    def _h_scan(self, pid: int) -> Generator[Any, Any, Tuple]:
        if self.register_level:
            return (yield from self._h_afek.scan(pid))
        return (yield Invoke(self.H, "scan"))

    def _h_update(
        self, pid: int, rank: int, new_history: Tuple
    ) -> Generator[Any, Any, None]:
        if self.register_level:
            yield from self._h_afek.update(pid, new_history)
        else:
            yield Invoke(self.H, "update", (rank, new_history))
        return None

    def _next_op_id(self, kind: str) -> str:
        self._op_counter += 1
        return f"{kind}{self._op_counter}"

    def _history_counts(self, h: Tuple) -> Tuple[int, ...]:
        """``(#h_0, ..., #h_k)`` with per-rank identity-keyed caching."""
        cache = self._count_cache
        counts = []
        for i, hist in enumerate(h):
            hit = cache[i]
            if hit[0] is hist:
                counts.append(hit[1])
            else:
                c = history_count(hist)
                cache[i] = (hist, c)
                counts.append(c)
        return tuple(counts)

    # ------------------------------------------------------------------
    # Scan — Figure 1 lines 14–21
    # ------------------------------------------------------------------
    def scan(self, pid: int) -> Generator[Any, Any, Tuple[Any, ...]]:
        """Scan(): returns a view of M (a tuple of m values).

        Non-blocking: repeats double collects of H until clean; each failed
        double collect implies a concurrent Block-Update completed an update
        to H (Lemma 23).  The first scan of each pair is published to all
        helping registers, which is what lets concurrent Block-Updates
        return views consistent with Scans.
        """
        rank = self.rank_of(pid)
        annotate = self.annotate
        if annotate:
            op_id = self._next_op_id("S")
            yield Annotate(
                AUG_OP_TAG,
                {"kind": "scan", "phase": "begin", "op_id": op_id,
                 "rank": rank, "object": self.name},
            )
        while True:
            h = yield from self._h_scan(pid)                          # line 15
            counts = self._history_counts(h)
            for j in range(self.k_plus_1):                            # line 16
                if j != rank:
                    yield Invoke(self.L[(rank, j)], "write", (counts[j], h))  # 17
            f = yield from self._h_scan(pid)                          # line 19
            if h == f:                                                # line 20
                break
        view = get_view(h, self.m)                                    # line 21
        if annotate:
            yield Annotate(
                AUG_OP_TAG,
                {"kind": "scan", "phase": "end", "op_id": op_id, "rank": rank,
                 "object": self.name, "view": view},
            )
        return view

    # ------------------------------------------------------------------
    # Block-Update — Figure 1 lines 22–37
    # ------------------------------------------------------------------
    def block_update(
        self,
        pid: int,
        components: Sequence[int],
        values: Sequence[Any],
    ) -> Generator[Any, Any, Any]:
        """Block-Update([j_1..j_c], [v_1..v_c]): returns a view of M or ☡.

        Wait-free (a constant number of primitive steps).  Returns
        :data:`~repro.augmented.views.YIELD` only if a Block-Update by a
        lower-rank process updated H during this operation's interval
        (Lemma 16); otherwise the Updates linearized consecutively at the
        update to H, and the returned view satisfies Lemma 22.
        """
        rank = self.rank_of(pid)
        comps = list(components)
        vals = list(values)
        if not comps:
            raise ValidationError("Block-Update needs at least one component")
        if len(comps) != len(vals):
            raise ValidationError("components and values must have equal length")
        if len(set(comps)) != len(comps):
            raise ValidationError("Block-Update components must be distinct")
        for c in comps:
            if not 0 <= c < self.m:
                raise ValidationError(f"component {c} out of range for m={self.m}")

        annotate = self.annotate
        if annotate:
            op_id = self._next_op_id("B")
            yield Annotate(
                AUG_OP_TAG,
                {"kind": "block_update", "phase": "begin", "op_id": op_id,
                 "rank": rank, "object": self.name,
                 "components": tuple(comps), "values": tuple(vals)},
            )

        h = yield from self._h_scan(pid)                              # line 23
        h_counts = self._history_counts(h)
        t = timestamp_for_counts(h_counts, rank)                      # line 24
        triples = tuple((c, v, t) for c, v in zip(comps, vals))
        yield from self._h_update(pid, rank, h[rank] + triples)       # line 25

        f = yield from self._h_scan(pid)                              # line 26
        f_counts = self._history_counts(f)
        for j in range(rank):                                         # line 27
            yield Invoke(self.L[(rank, j)], "write", (f_counts[j], f))  # 28

        g = yield from self._h_scan(pid)                              # line 29
        g_counts = self._history_counts(g)
        if any(g_counts[j] > h_counts[j] for j in range(rank)):       # line 30
            self.yield_counts[rank] += 1
            if annotate:
                yield Annotate(
                    AUG_OP_TAG,
                    {"kind": "block_update", "phase": "end", "op_id": op_id,
                     "rank": rank, "object": self.name, "timestamp": t,
                     "result": "yield"},
                )
            return YIELD                                              # line 31

        last = h                                                      # line 32
        for j in range(self.k_plus_1):                                # line 33
            if j == rank:
                continue
            r_j = yield Invoke(self.L[(j, rank)], "read", (h_counts[rank],))  # 34
            if r_j is not None and is_proper_prefix(last, r_j):       # line 35
                last = r_j                                            # line 36
        view = get_view(last, self.m)                                 # line 37
        self.atomic_counts[rank] += 1
        if annotate:
            yield Annotate(
                AUG_OP_TAG,
                {"kind": "block_update", "phase": "end", "op_id": op_id,
                 "rank": rank, "object": self.name, "timestamp": t,
                 "result": "view", "view": view},
            )
        return view
