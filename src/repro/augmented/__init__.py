"""The augmented snapshot object (Section 3, Figure 1) and its analysis.

An m-component augmented multi-writer snapshot ``M`` shared by k+1 processes
supports ``Scan`` and ``Block-Update``.  A Block-Update writes several
components (as a sequence of individually-linearizable ``Update``\\ s) and
either

* is **atomic** — its Updates linearize consecutively — and returns a view of
  ``M`` from a point before it with no Scans or other atomic Block-Updates in
  between (the view a covering simulator uses to *revise the past*), or
* returns the **yield sign** ☡, which may happen only when a lower-identifier
  process's Block-Update ran concurrently.

:mod:`repro.augmented.object` is a line-by-line implementation of Figure 1;
:mod:`repro.augmented.views` holds the local functions (New-timestamp,
Get-view, prefix tests); :mod:`repro.augmented.linearization` implements the
Appendix B linearization rules and the checkable forms of Lemmas 13–23.
"""

from repro.augmented.object import AugmentedSnapshot
from repro.augmented.views import (
    YIELD,
    get_view,
    history_counts,
    history_count,
    is_prefix,
    is_proper_prefix,
    new_timestamp,
)

__all__ = [
    "AugmentedSnapshot",
    "YIELD",
    "get_view",
    "history_count",
    "history_counts",
    "is_prefix",
    "is_proper_prefix",
    "new_timestamp",
]
