"""Appendix B as executable analysis: linearization points and lemma checks.

The augmented snapshot's Block-Update is deliberately *not* linearizable, but
the Updates comprising it and all Scans are.  Appendix B defines where they
linearize:

* a completed ``Scan`` linearizes at its last scan of H (line 19);
* the ``Update`` to component ``j`` with associated timestamp ``t`` linearizes
  at the *first* point where H contains a triple with component ``j`` and
  timestamp ``t' ≽ t`` (Updates linearized at the same point are ordered by
  timestamp, then component).

This module reconstructs operations from a system trace (using the begin/end
annotations emitted by :class:`~repro.augmented.object.AugmentedSnapshot`),
computes those linearization points, and provides one checker per Appendix B
result.  Checkers return lists of human-readable violation strings — empty
means the lemma held on this execution — so the test-suite and the E1
experiment can assert emptiness over thousands of schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.augmented.object import AUG_OP_TAG, AugmentedSnapshot
from repro.errors import ValidationError
from repro.runtime.events import Trace
from repro.timestamps import VectorTimestamp


@dataclass
class BlockUpdateRecord:
    """One Block-Update operation reconstructed from the trace."""

    op_id: str
    rank: int
    begin_seq: int
    components: Tuple[int, ...]
    values: Tuple[Any, ...]
    end_seq: Optional[int] = None
    result: Optional[str] = None  # "view" | "yield" | None if incomplete
    returned_view: Any = None
    timestamp: Optional[VectorTimestamp] = None
    h_scan_seq: Optional[int] = None  # line 23 scan
    x_seq: Optional[int] = None  # line 25 update to H

    @property
    def completed(self) -> bool:
        return self.end_seq is not None

    @property
    def atomic(self) -> bool:
        return self.result == "view"


@dataclass
class ScanRecord:
    """One Scan operation reconstructed from the trace."""

    op_id: str
    rank: int
    begin_seq: int
    end_seq: Optional[int] = None
    returned_view: Any = None
    lin_seq: Optional[int] = None  # last scan of H (line 19)

    @property
    def completed(self) -> bool:
        return self.end_seq is not None


@dataclass
class LinPoint:
    """One entry of the linearized sequence σ."""

    kind: str  # "update" | "scan"
    seq: int  # trace sequence number of the linearization point
    order: Tuple  # full sort key, including same-point tie-breaks
    component: Optional[int] = None
    value: Any = None
    timestamp: Optional[VectorTimestamp] = None
    block_update: Optional[BlockUpdateRecord] = None
    scan: Optional[ScanRecord] = None


@dataclass
class Linearization:
    """The result of analysing one execution of one augmented snapshot."""

    block_updates: List[BlockUpdateRecord]
    scans: List[ScanRecord]
    sigma: List[LinPoint]
    m: int

    def views_after_prefixes(self) -> List[Tuple[Any, ...]]:
        """Contents of M after each prefix of σ (index p = after p entries)."""
        contents: List[Any] = [None] * self.m
        out = [tuple(contents)]
        for point in self.sigma:
            if point.kind == "update":
                contents[point.component] = point.value
            out.append(tuple(contents))
        return out


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def extract_operations(
    trace: Trace, obj: AugmentedSnapshot
) -> Tuple[List[BlockUpdateRecord], List[ScanRecord]]:
    """Reconstruct all Scan and Block-Update operations on ``obj``.

    Uses the begin/end annotations plus the raw H steps between them.  Steps
    of incomplete operations (process crashed or still running) are handled:
    a Block-Update that performed its update to H (line 25) has a timestamp
    and participates in linearization; one that did not is invisible.
    """
    if obj.H is None:
        raise ValidationError(
            f"{obj.name} ran in register-level mode: H is an [AAD+93] "
            "construction, so the Appendix B trace analysis (which reads "
            "native H steps) is unavailable — run in native mode to analyse"
        )
    h_name = obj.H.name
    open_ops: Dict[int, Any] = {}  # pid is unique per op at a time: rank -> record
    bus: List[BlockUpdateRecord] = []
    scans: List[ScanRecord] = []
    by_id: Dict[str, Any] = {}
    # Track H contents to attribute appended triples (for timestamps).
    h_state: List[Tuple] = [()] * obj.k_plus_1

    for event in trace:
        if event.is_annotation() and event.tag == AUG_OP_TAG:
            info = event.payload
            if info.get("object") != obj.name:
                continue
            rank = info["rank"]
            if info["phase"] == "begin":
                if info["kind"] == "block_update":
                    record = BlockUpdateRecord(
                        op_id=info["op_id"],
                        rank=rank,
                        begin_seq=event.seq,
                        components=info["components"],
                        values=info["values"],
                    )
                    bus.append(record)
                else:
                    record = ScanRecord(
                        op_id=info["op_id"], rank=rank, begin_seq=event.seq
                    )
                    scans.append(record)
                open_ops[rank] = record
                by_id[info["op_id"]] = record
            else:  # end
                record = by_id.get(info["op_id"])
                if record is None:
                    raise ValidationError(
                        f"end annotation for unknown op {info['op_id']}"
                    )
                record.end_seq = event.seq
                if isinstance(record, BlockUpdateRecord):
                    record.result = info["result"]
                    record.timestamp = info.get("timestamp", record.timestamp)
                    record.returned_view = info.get("view")
                else:
                    record.returned_view = info.get("view")
                open_ops.pop(rank, None)
            continue

        if not event.is_step() or event.obj_name != h_name:
            continue
        # A primitive step on H; attribute it to the issuing process's op.
        rank = obj.rank_of(event.pid)
        record = open_ops.get(rank)
        if event.op == "scan":
            if isinstance(record, ScanRecord):
                record.lin_seq = event.seq  # overwritten until the last one
            elif isinstance(record, BlockUpdateRecord):
                if record.h_scan_seq is None:
                    record.h_scan_seq = event.seq  # line 23
        elif event.op == "update":
            slot, new_history = event.args
            appended = new_history[len(h_state[slot]):]
            h_state[slot] = new_history
            if isinstance(record, BlockUpdateRecord) and record.x_seq is None:
                record.x_seq = event.seq
                if appended:
                    record.timestamp = appended[0][2]
    return bus, scans


# ----------------------------------------------------------------------
# Linearization (Appendix B rules)
# ----------------------------------------------------------------------
def linearize(trace: Trace, obj: AugmentedSnapshot) -> Linearization:
    """Compute σ, the linearized sequence of Updates and Scans on ``obj``."""
    bus, scans = extract_operations(trace, obj)

    # Pending Updates: one per (component, value) of each Block-Update whose
    # update to H happened (it has a timestamp).
    pending: List[Tuple[int, Any, VectorTimestamp, BlockUpdateRecord]] = []
    for record in bus:
        if record.timestamp is None:
            continue
        for component, value in zip(record.components, record.values):
            pending.append((component, value, record.timestamp, record))

    # Walk H updates in trace order, tracking the max timestamp per component.
    points: List[LinPoint] = []
    max_ts: Dict[int, VectorTimestamp] = {}
    h_name = obj.H.name
    h_state: List[Tuple] = [()] * obj.k_plus_1
    for event in trace:
        if not event.is_step() or event.obj_name != h_name or event.op != "update":
            continue
        slot, new_history = event.args
        appended = new_history[len(h_state[slot]):]
        h_state[slot] = new_history
        for component, _value, ts in appended:
            if component not in max_ts or ts > max_ts[component]:
                max_ts[component] = ts
        still_pending = []
        for component, value, ts, record in pending:
            if component in max_ts and max_ts[component] >= ts:
                points.append(
                    LinPoint(
                        kind="update",
                        seq=event.seq,
                        order=(event.seq, 0, ts.as_tuple(), component),
                        component=component,
                        value=value,
                        timestamp=ts,
                        block_update=record,
                    )
                )
            else:
                still_pending.append((component, value, ts, record))
        pending = still_pending

    for record in scans:
        if record.completed and record.lin_seq is not None:
            points.append(
                LinPoint(
                    kind="scan",
                    seq=record.lin_seq,
                    order=(record.lin_seq, 1, (), -1),
                    scan=record,
                )
            )

    points.sort(key=lambda p: p.order)
    return Linearization(block_updates=bus, scans=scans, sigma=points, m=obj.m)


# ----------------------------------------------------------------------
# Lemma checkers — each returns a list of violations (empty = lemma held)
# ----------------------------------------------------------------------
def check_scan_views(lin: Linearization) -> List[str]:
    """Corollary 18: every completed Scan returns the contents of M at its
    linearization point (the value of the last Update to each component
    linearized before it, or ⊥)."""
    violations = []
    views = lin.views_after_prefixes()
    for index, point in enumerate(lin.sigma):
        if point.kind != "scan":
            continue
        expected = views[index]
        actual = point.scan.returned_view
        if tuple(actual) != expected:
            violations.append(
                f"Scan {point.scan.op_id} returned {actual}, but contents at "
                f"its linearization point were {expected}"
            )
    return violations


def check_atomic_block_updates(lin: Linearization) -> List[str]:
    """Lemma 14: the Updates of each non-☡ Block-Update linearize at its
    update to H, consecutively, in component order."""
    violations = []
    position: Dict[str, List[int]] = {}
    for index, point in enumerate(lin.sigma):
        if point.kind == "update":
            position.setdefault(point.block_update.op_id, []).append(index)
    for record in lin.block_updates:
        if not record.atomic:
            continue
        indices = position.get(record.op_id, [])
        if len(indices) != len(record.components):
            violations.append(
                f"Block-Update {record.op_id}: expected "
                f"{len(record.components)} linearized Updates, found "
                f"{len(indices)}"
            )
            continue
        if indices != list(range(indices[0], indices[0] + len(indices))):
            violations.append(
                f"Block-Update {record.op_id}: Updates are not consecutive "
                f"in σ (positions {indices})"
            )
        seqs = {lin.sigma[i].seq for i in indices}
        if seqs != {record.x_seq}:
            violations.append(
                f"Block-Update {record.op_id}: Updates linearized at {seqs}, "
                f"not at its update to H ({record.x_seq})"
            )
        comps = [lin.sigma[i].component for i in indices]
        if comps != sorted(comps):
            violations.append(
                f"Block-Update {record.op_id}: Updates not in component "
                f"order: {comps}"
            )
    return violations


def check_updates_within_intervals(lin: Linearization) -> List[str]:
    """Lemma 15: each Update linearizes after its Block-Update's first scan
    of H and no later than its update to H."""
    violations = []
    for point in lin.sigma:
        if point.kind != "update":
            continue
        record = point.block_update
        if record.h_scan_seq is not None and point.seq <= record.h_scan_seq:
            violations.append(
                f"Update of {record.op_id} linearized at {point.seq}, before "
                f"its scan of H at {record.h_scan_seq}"
            )
        if record.x_seq is not None and point.seq > record.x_seq:
            violations.append(
                f"Update of {record.op_id} linearized at {point.seq}, after "
                f"its update to H at {record.x_seq}"
            )
    return violations


def check_yield_rule(trace: Trace, obj: AugmentedSnapshot) -> List[str]:
    """Specification of ☡ (and Lemma 16): a Block-Update returns ☡ only if a
    lower-rank process performed an update to H (line 25) during its
    execution interval."""
    violations = []
    bus, _scans = extract_operations(trace, obj)
    h_name = obj.H.name
    update_steps = [
        (event.seq, obj.rank_of(event.pid))
        for event in trace
        if event.is_step() and event.obj_name == h_name and event.op == "update"
    ]
    for record in bus:
        if record.result != "yield":
            continue
        interval_has_lower = any(
            record.begin_seq <= seq <= record.end_seq and rank < record.rank
            for seq, rank in update_steps
        )
        if not interval_has_lower:
            violations.append(
                f"Block-Update {record.op_id} (rank {record.rank}) returned ☡ "
                "with no lower-rank update to H in its interval"
            )
    return violations


def check_returned_views(lin: Linearization) -> List[str]:
    """Lemma 22: an atomic Block-Update B returns the contents of M at a
    point T before its linearization point Z, such that between T and Z only
    Updates of ☡ Block-Updates (by other processes) are linearized — in
    particular no Scans and no other atomic Block-Updates."""
    violations = []
    views = lin.views_after_prefixes()
    first_index: Dict[str, int] = {}
    for index, point in enumerate(lin.sigma):
        if point.kind == "update":
            first_index.setdefault(point.block_update.op_id, index)
    for record in lin.block_updates:
        if not record.atomic or record.op_id not in first_index:
            continue
        z_index = first_index[record.op_id]
        expected = tuple(record.returned_view)
        # Scan back from Z over entries that are Updates of ☡ Block-Updates
        # by other ranks; T must be one of the positions passed (inclusive).
        candidate = z_index
        found = False
        while True:
            if views[candidate] == expected:
                found = True
                break
            if candidate == 0:
                break
            previous = lin.sigma[candidate - 1]
            if previous.kind != "update":
                break  # a Scan linearized here; T cannot be earlier
            bu = previous.block_update
            if bu.atomic or bu.rank == record.rank:
                break  # an atomic Block-Update's Update; window boundary Z'
            candidate -= 1
        if not found:
            violations.append(
                f"Block-Update {record.op_id} returned {expected}, which does "
                "not match the contents of M at any admissible point T before "
                f"its linearization point (position {z_index})"
            )
    return violations


def check_all(trace: Trace, obj: AugmentedSnapshot) -> List[str]:
    """Run every Appendix B checker; returns all violations found."""
    lin = linearize(trace, obj)
    violations = []
    violations += check_scan_views(lin)
    violations += check_atomic_block_updates(lin)
    violations += check_updates_within_intervals(lin)
    violations += check_yield_rule(trace, obj)
    violations += check_returned_views(lin)
    return violations
