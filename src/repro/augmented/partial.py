"""The *partially* augmented snapshot: Block-Updates by q_0 only.

Appendix B alludes to a staged construction: "In the partially augmented
snapshot, only q_0 performed Block-Update operations and we ensured that
the return values of Block-Updates were consistent with the return values
of Scan operations."  This module implements that stage.  Because q_0 has
no lower-identifier rival, *every* one of its Block-Updates is atomic, so
the object needs none of Figure 1's conflict machinery: no yield sign, no
helping writes on the Block-Update path (lines 26–31 vanish).  What
remains is the essential core —

* Scans publish their first collect to helping registers so a concurrent
  Block-Update can return a view consistent with them (Figure 1 lines
  16–18 / 32–37), and
* Updates carry fresh lexicographic timestamps so Get-view is well defined.

The class also supports a deliberately *unsafe* mode
(``unsafe_allow_any_rank=True``) that lets every process Block-Update
without the yield check.  Tests use it to exhibit the inconsistent views
that the full object's ☡ mechanism exists to prevent — the constructive
answer to "why is Figure 1 so careful?".
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Sequence, Tuple

from repro.augmented.views import (
    get_view,
    history_counts,
    is_proper_prefix,
    new_timestamp,
)
from repro.errors import ModelError, ValidationError
from repro.memory.registers import RegisterArray
from repro.memory.snapshot import SingleWriterSnapshot
from repro.runtime.events import Annotate, Invoke

PARTIAL_OP_TAG = "partial.op"


class PartialAugmentedSnapshot:
    """m-component snapshot with Scans for all, Block-Updates for q_0.

    Processes other than q_0 may perform single-component ``update``
    operations (one-triple appends, trivially atomic).  q_0's
    ``block_update`` returns a view of the object at a point before its
    updates such that no Scan linearizes in between — the property the
    revisionist machinery needs, obtained here without any possibility of
    ☡ because no rival Block-Updates exist.
    """

    def __init__(
        self,
        name: str,
        components: int,
        pids: Sequence[int],
        unsafe_allow_any_rank: bool = False,
    ) -> None:
        if components < 1:
            raise ValidationError("need at least one component")
        if not pids:
            raise ValidationError("need at least one process")
        self.name = name
        self.m = components
        self.pids = list(pids)
        self._rank = {pid: i for i, pid in enumerate(self.pids)}
        if len(self._rank) != len(self.pids):
            raise ValidationError("duplicate pids")
        self.unsafe_allow_any_rank = unsafe_allow_any_rank
        self.H = SingleWriterSnapshot(f"{name}.H", writers=self.pids, initial=())
        # Helping registers: scanner i helps block-updater j (normally only
        # j = 0 is read, but the unsafe mode reads them all).
        self.L: Dict[Tuple[int, int], RegisterArray] = {}
        for i, pid_i in enumerate(self.pids):
            for j, pid_j in enumerate(self.pids):
                if i != j:
                    self.L[(i, j)] = RegisterArray(
                        f"{name}.L[{i},{j}]", initial=None,
                        writer=pid_i, reader=pid_j,
                    )
        self._op_counter = 0

    def rank_of(self, pid: int) -> int:
        """The identifier (priority) of ``pid`` within this object."""
        try:
            return self._rank[pid]
        except KeyError:
            raise ModelError(f"pid {pid} does not share {self.name}") from None

    def register_count(self) -> int:
        """Registers used: H's components plus touched helping cells."""
        return self.H.register_count() + sum(
            arr.register_count() for arr in self.L.values()
        )

    def _next_op_id(self, kind: str) -> str:
        self._op_counter += 1
        return f"{kind}{self._op_counter}"

    # ------------------------------------------------------------------
    def scan(self, pid: int) -> Generator[Any, Any, Tuple[Any, ...]]:
        """Double-collect scan with helping, as in Figure 1 lines 14–21."""
        rank = self.rank_of(pid)
        op_id = self._next_op_id("S")
        yield Annotate(PARTIAL_OP_TAG, {
            "object": self.name, "kind": "scan", "phase": "begin",
            "op_id": op_id, "rank": rank,
        })
        while True:
            h = yield Invoke(self.H, "scan")
            counts = history_counts(h)
            for j in range(len(self.pids)):
                if j != rank:
                    yield Invoke(self.L[(rank, j)], "write", (counts[j], h))
            f = yield Invoke(self.H, "scan")
            if h == f:
                break
        view = get_view(h, self.m)
        yield Annotate(PARTIAL_OP_TAG, {
            "object": self.name, "kind": "scan", "phase": "end",
            "op_id": op_id, "rank": rank, "view": view,
        })
        return view

    def update(
        self, pid: int, component: int, value: Any
    ) -> Generator[Any, Any, None]:
        """A single-component update by any process (atomic at its append)."""
        rank = self.rank_of(pid)
        if not 0 <= component < self.m:
            raise ValidationError(f"component {component} out of range")
        h = yield Invoke(self.H, "scan")
        stamp = new_timestamp(h, rank)
        yield Invoke(
            self.H, "update", (rank, h[rank] + ((component, value, stamp),))
        )
        return None

    def block_update(
        self,
        pid: int,
        components: Sequence[int],
        values: Sequence[Any],
    ) -> Generator[Any, Any, Tuple[Any, ...]]:
        """q_0's always-atomic Block-Update; returns a pre-update view.

        Figure 1 minus the conflict machinery: scan H, stamp, append all
        triples, then choose the latest of {own collect} ∪ {views published
        by concurrent Scans} (lines 32–37).  Never returns ☡.
        """
        rank = self.rank_of(pid)
        if rank != 0 and not self.unsafe_allow_any_rank:
            raise ModelError(
                f"{self.name}: only q_0 may Block-Update the partially "
                "augmented snapshot"
            )
        comps = list(components)
        vals = list(values)
        if not comps or len(comps) != len(vals) or len(set(comps)) != len(comps):
            raise ValidationError("malformed Block-Update arguments")
        for c in comps:
            if not 0 <= c < self.m:
                raise ValidationError(f"component {c} out of range")

        op_id = self._next_op_id("B")
        yield Annotate(PARTIAL_OP_TAG, {
            "object": self.name, "kind": "block_update", "phase": "begin",
            "op_id": op_id, "rank": rank, "components": tuple(comps),
            "values": tuple(vals),
        })
        h = yield Invoke(self.H, "scan")
        stamp = new_timestamp(h, rank)
        triples = tuple((c, v, stamp) for c, v in zip(comps, vals))
        yield Invoke(self.H, "update", (rank, h[rank] + triples))

        h_counts = history_counts(h)
        last = h
        for j in range(len(self.pids)):
            if j == rank:
                continue
            r_j = yield Invoke(self.L[(j, rank)], "read", (h_counts[rank],))
            if r_j is not None and is_proper_prefix(last, r_j):
                last = r_j
        view = get_view(last, self.m)
        yield Annotate(PARTIAL_OP_TAG, {
            "object": self.name, "kind": "block_update", "phase": "end",
            "op_id": op_id, "rank": rank, "timestamp": stamp, "view": view,
        })
        return view
