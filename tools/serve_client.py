#!/usr/bin/env python
"""A thin command-line client for the campaign service.

Talks to a server started with ``repro serve``; the server's address
comes from ``--host``/``--port`` or (more conveniently) from the
``server.json`` a server writes into its state directory::

    python tools/serve_client.py --state state/ health
    python tools/serve_client.py --state state/ submit \\
        '{"experiment": "fuzz", "runs": 200}' --api-key alice
    python tools/serve_client.py --state state/ status <job-id>
    python tools/serve_client.py --state state/ events <job-id> --follow
    python tools/serve_client.py --state state/ wait <job-id>
    python tools/serve_client.py --state state/ report <job-id>
    python tools/serve_client.py --state state/ cancel <job-id>
    python tools/serve_client.py --state state/ list [--tenant alice]

All output is JSON (one object per line for ``events``), so the tool
composes with ``jq`` and shell pipelines.
"""

import argparse
import json
import sys

from repro.serve.client import (
    ServeClient,
    ServeClientError,
    read_server_address,
)


def build_parser() -> argparse.ArgumentParser:
    """The client's argument parser."""
    parser = argparse.ArgumentParser(
        description="Command-line client for the repro campaign service.",
    )
    parser.add_argument("--host", default=None,
                        help="server host (default: from server.json)")
    parser.add_argument("--port", type=int, default=None,
                        help="server port (default: from server.json)")
    parser.add_argument("--state", default=None,
                        help="server state dir holding server.json")
    parser.add_argument("--api-key", default=None,
                        help="tenant key sent as X-Api-Key")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="wait timeout in seconds (default 600)")
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("health", help="GET /healthz")
    submit = sub.add_parser("submit", help="POST /jobs")
    submit.add_argument("spec", help="job spec as a JSON object")
    listing = sub.add_parser("list", help="GET /jobs")
    listing.add_argument("--tenant", default=None,
                         help="only this tenant's jobs")
    for action, extra in (
        ("status", ()), ("wait", ()), ("report", ()), ("cancel", ()),
        ("events", ("--follow",)),
    ):
        command = sub.add_parser(action, help=f"{action} one job")
        command.add_argument("job_id")
        for flag in extra:
            command.add_argument(flag, action="store_true")
    return parser


def main(argv=None) -> int:
    """Run one client action and print its JSON result."""
    args = build_parser().parse_args(argv)
    host, port = args.host, args.port
    if (host is None or port is None) and args.state is not None:
        address = read_server_address(args.state)
        host = host or address["host"]
        port = port or address["port"]
    if host is None or port is None:
        print("error: give --host/--port or --state", file=sys.stderr)
        return 2
    client = ServeClient(host, port, api_key=args.api_key)

    try:
        if args.action == "health":
            print(json.dumps(client.health(), sort_keys=True))
        elif args.action == "submit":
            spec = json.loads(args.spec)
            print(json.dumps(client.submit(spec), sort_keys=True))
        elif args.action == "list":
            print(json.dumps(client.list_jobs(args.tenant),
                             sort_keys=True))
        elif args.action == "status":
            print(json.dumps(client.status(args.job_id), sort_keys=True))
        elif args.action == "wait":
            status = client.wait(args.job_id, timeout=args.timeout)
            print(json.dumps(status, sort_keys=True))
            return 0 if status["state"] == "done" else 1
        elif args.action == "report":
            print(json.dumps(client.result(args.job_id), sort_keys=True))
        elif args.action == "cancel":
            print(json.dumps(client.cancel(args.job_id), sort_keys=True))
        elif args.action == "events":
            for event in client.events(args.job_id, follow=args.follow):
                print(json.dumps(event, sort_keys=True), flush=True)
    except ServeClientError as error:
        print(f"error ({error.status}): {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
