#!/usr/bin/env python
"""CI certify drill: campaign with the gate on, tamper a file, verify.

Runs a small fuzz campaign with ``verify_certificates=True``, writes
the emitted witness certificates to disk, and checks the verify CLI's
exit-code contract end to end: an honest certificate store verifies
with exit 0, and after one file is tampered with on disk the same
command must exit non-zero.  This is the end-to-end drill of the
self-certifying-results contract (docs/CERTIFICATES.md): a forged or
corrupted claim never survives an audit.
"""

import json
import os
import subprocess
import sys
import tempfile

from repro.campaign import fuzz_campaign
from repro.certify.certificates import write_certificates
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)


def verify_cli(directory: str) -> int:
    """Run ``repro certify verify --dir`` in a fresh process."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "certify", "verify",
         "--dir", directory],
        env=dict(os.environ), timeout=300,
    )
    return completed.returncode


def main() -> int:
    result = fuzz_campaign(
        TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
        KSetAgreementTask(1), runs=80, schedule_length=40, seed=7,
        workers=2, chunk_size=20, verify_certificates=True,
    )
    if not result.complete:
        print("FAIL: campaign did not complete", file=sys.stderr)
        return 1
    certificates = result.report.certificates
    if not certificates:
        print("FAIL: campaign emitted no certificates", file=sys.stderr)
        return 1
    print(f"campaign: {result.report.summary()} "
          f"({result.telemetry.certificates_verified} certificates "
          f"verified in-engine)")

    with tempfile.TemporaryDirectory(prefix="repro-certify-") as directory:
        paths = write_certificates(directory, certificates)
        print(f"wrote {len(paths)} certificate file(s)")

        if verify_cli(directory) != 0:
            print("FAIL: honest certificate store did not verify",
                  file=sys.stderr)
            return 1
        print("OK: honest store verifies (exit 0)")

        # Tamper with one claim on disk without re-minting its
        # checksum — the CLI audit must now fail loudly.
        victim = paths[0]
        with open(victim) as handle:
            data = json.load(handle)
        data["payload"]["schedule"] = list(
            reversed(data["payload"]["schedule"])
        )
        with open(victim, "w") as handle:
            json.dump(data, handle)
        print(f"tampered with {os.path.basename(victim)}")

        code = verify_cli(directory)
        if code == 0:
            print("FAIL: tampered certificate store verified",
                  file=sys.stderr)
            return 1
        print(f"OK: tampered store rejected (exit {code})")

    print("OK: certify drill passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
