#!/usr/bin/env python
"""CI chaos smoke: kill a campaign mid-run, resume it, demand identity.

Runs a small protocol sweep three ways — uninterrupted, killed at an
injected chunk while journaling to a checkpoint, and resumed from that
checkpoint — and exits non-zero unless the resumed report is ``==`` and
``repr``-identical to the uninterrupted one.  This is the end-to-end
drill of the fault-tolerance contract (docs/CAMPAIGNS.md): a crash
costs at most the chunk in flight, never the science.
"""

import sys
import tempfile

from repro.campaign import (
    CampaignKilled,
    FakeClock,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SweepProtocolJob,
    run_campaign,
)
from repro.protocols import KSetAgreementTask, MinSeen


def main() -> int:
    job = SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(24)), task=KSetAgreementTask(3),
    )
    retry = RetryPolicy(max_retries=2, base_delay=0.01)

    def run(**kwargs):
        return run_campaign(
            job, workers=1, chunk_size=4, retry=retry,
            clock=FakeClock(), **kwargs,
        )

    clean = run()
    print(f"clean run: {clean.report.summary()}")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as directory:
        path = f"{directory}/smoke.ckpt"
        # Chunk 1 is flaky (retried through backoff), chunk 3 kills the
        # campaign — a deterministic stand-in for a mid-run crash.
        plan = FaultPlan({
            1: FaultSpec("flaky", attempts=1),
            3: FaultSpec("kill"),
        })
        try:
            run(checkpoint=path, faults=plan)
        except CampaignKilled:
            print("campaign killed at chunk 3 (checkpoint retained)")
        else:
            print("FAIL: injected kill did not fire", file=sys.stderr)
            return 1

        resumed = run(checkpoint=path, resume=True)
        print(f"resumed:   {resumed.report.summary()} "
              f"(skipped {resumed.telemetry.skipped_chunks} "
              f"checkpointed chunks)")

    if resumed.telemetry.skipped_chunks != 3:
        print(f"FAIL: expected to skip 3 chunks, skipped "
              f"{resumed.telemetry.skipped_chunks}", file=sys.stderr)
        return 1
    if resumed.report != clean.report:
        print("FAIL: resumed report != uninterrupted report",
              file=sys.stderr)
        return 1
    if repr(resumed.report) != repr(clean.report):
        print("FAIL: resumed report repr differs", file=sys.stderr)
        return 1
    print("OK: kill-and-resume report identical to uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
