#!/usr/bin/env python
"""CI serve drill: kill the job server mid-run, restart it, demand identity.

The end-to-end exercise of the service durability contract
(docs/SERVICE.md):

1. compute baseline reports for two campaigns with the batch engine;
2. start ``repro serve`` as a real subprocess against a fresh state
   directory and submit both campaigns as jobs under two different
   tenants (one with the certificate gate on);
3. wait until both jobs are mid-run (chunks completed, job not done),
   then SIGKILL the server — no warning, no drain;
4. restart the server against the same state directory and wait for
   both jobs to finish;
5. fetch both final reports over HTTP and exit non-zero unless each is
   ``==``- and ``repr``-identical to its uninterrupted baseline.

A pass means a server crash costs at most the chunks in flight: every
submitted job survives, resumes, and produces exactly the result an
uncrashed server would have served.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.campaign import run_campaign
from repro.serve.client import ServeClient, read_server_address
from repro.serve.jobspec import JobSpec, build_job

#: Two tenants, two campaigns; B runs under the certificate gate.
SPEC_A = {"experiment": "protocol", "protocol": "racing",
          "seeds": 400, "chunk_size": 4}
SPEC_B = {"experiment": "fuzz", "runs": 240, "chunk_size": 20,
          "verify_certificates": True}

START_TIMEOUT = 60.0
JOB_TIMEOUT = 600.0


def start_server(state: str):
    """Start ``repro serve`` on a free port; return (process, client)."""
    marker = os.path.join(state, "server.json")
    if os.path.exists(marker):
        os.unlink(marker)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state", state,
         "--port", "0", "--workers", "2"],
        env=dict(os.environ),
    )
    deadline = time.monotonic() + START_TIMEOUT
    while not os.path.exists(marker):
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited early with {process.returncode}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("server did not write server.json")
        time.sleep(0.05)
    address = read_server_address(state)
    client = ServeClient(address["host"], address["port"], timeout=30.0)
    deadline = time.monotonic() + START_TIMEOUT
    while True:
        try:
            client.health()
            return process, client
        except Exception:
            if time.monotonic() > deadline:
                process.kill()
                raise
            time.sleep(0.05)


def wait_mid_run(client: ServeClient, job_ids) -> None:
    """Block until every job is running with >= 1 chunk done, none done."""
    deadline = time.monotonic() + JOB_TIMEOUT
    while time.monotonic() < deadline:
        statuses = [client.status(job_id) for job_id in job_ids]
        if any(status["state"] in ("failed", "cancelled")
               for status in statuses):
            raise RuntimeError(f"job failed before the kill: {statuses}")
        if all(
            status["state"] == "done"
            or status.get("progress", {}).get("completed_chunks", 0) >= 1
            for status in statuses
        ):
            if any(status["state"] != "done" for status in statuses):
                return
            raise RuntimeError(
                "both jobs finished before the kill; grow the specs"
            )
        time.sleep(0.05)
    raise RuntimeError("jobs made no progress before the kill deadline")


def main() -> int:
    print("computing uninterrupted baselines with the batch engine ...")
    baselines = {}
    for name, spec in (("A", SPEC_A), ("B", SPEC_B)):
        parsed = JobSpec.from_dict(spec)
        baselines[name] = run_campaign(
            build_job(parsed), workers=2, chunk_size=parsed.chunk_size,
            verify_certificates=parsed.verify_certificates,
        ).report
        print(f"  baseline {name}: {baselines[name].summary()}")

    with tempfile.TemporaryDirectory(prefix="repro-serve-drill-") as state:
        process, client = start_server(state)
        try:
            job_a = ServeClient(
                client.host, client.port, api_key="tenant-a"
            ).submit(SPEC_A)["id"]
            job_b = ServeClient(
                client.host, client.port, api_key="tenant-b"
            ).submit(SPEC_B)["id"]
            print(f"submitted job A={job_a} (tenant-a), "
                  f"B={job_b} (tenant-b)")

            wait_mid_run(client, [job_a, job_b])
            print("both jobs mid-run; SIGKILL the server")
        except BaseException:
            process.kill()
            raise
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=60)

        process, client = start_server(state)
        try:
            print("server restarted against the same state directory")
            failures = 0
            for name, job_id in (("A", job_a), ("B", job_b)):
                status = client.wait(job_id, timeout=JOB_TIMEOUT)
                if status["state"] != "done":
                    print(f"FAIL: job {name} ended {status['state']}: "
                          f"{status.get('error')}", file=sys.stderr)
                    failures += 1
                    continue
                report = client.report(job_id)
                identical = (
                    report == baselines[name]
                    and repr(report) == repr(baselines[name])
                )
                skipped = status.get("progress", {})
                print(f"  job {name}: {report.summary()}")
                print(f"    progress: {json.dumps(skipped, sort_keys=True)}")
                if identical:
                    print(f"    report identical to baseline {name}")
                else:
                    print(f"FAIL: job {name} report differs from its "
                          f"uninterrupted baseline", file=sys.stderr)
                    print(f"  served:   {report!r}", file=sys.stderr)
                    print(f"  baseline: {baselines[name]!r}",
                          file=sys.stderr)
                    failures += 1
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()

        if failures:
            print(f"serve drill FAILED ({failures} check(s))",
                  file=sys.stderr)
            return 1
    print("serve drill passed: kill + restart lost nothing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
