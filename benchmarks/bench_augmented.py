"""E1 (Figure 1) — augmented snapshot correctness and cost.

Runs mixed Scan/Block-Update workloads across (k+1, m) shapes and random
schedules, measuring operation throughput and validating the Appendix B
lemmas on every execution; reports atomic-vs-☡ Block-Update rates per rank
(rank 0 must never yield — Lemma 16).  The workload itself lives in
:mod:`repro.bench.workloads`, shared with ``repro bench run``; this module
is the pytest-benchmark adapter that times it and prints the tables."""

import pytest

from repro.augmented.linearization import check_all, linearize
from repro.bench.workloads import augmented_workload as workload


@pytest.mark.parametrize("k_plus_1,m", [(2, 2), (3, 3), (5, 4)])
def test_augmented_workload(benchmark, table, k_plus_1, m):
    system, aug = benchmark(workload, k_plus_1, m, 4, 12345)
    violations = check_all(system.trace, aug)
    assert violations == []
    lin = linearize(system.trace, aug)
    rows = [
        (rank, aug.atomic_counts[rank], aug.yield_counts[rank])
        for rank in range(k_plus_1)
    ]
    table(
        f"E1: Block-Update outcomes by rank (k+1={k_plus_1}, m={m})",
        ["rank", "atomic", "yield ☡"],
        rows,
    )
    assert aug.yield_counts[0] == 0  # Lemma 16 for the lowest identifier


def test_appendix_b_checker_over_many_seeds(benchmark, table):
    """The E1 validation sweep: thousands of linearization checks."""

    def sweep():
        clean = 0
        for seed in range(40):
            system, aug = workload(3, 3, 3, seed)
            if check_all(system.trace, aug) == []:
                clean += 1
        return clean

    clean = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert clean == 40
    table(
        "E1b: Appendix B lemma checks over random schedules",
        ["schedules checked", "violations"],
        [(40, 0)],
    )


@pytest.mark.parametrize("k_plus_1", [2, 3, 4, 6])
def test_block_update_step_cost(benchmark, table, k_plus_1):
    """Block-Updates are wait-free with cost linear in k (4 H-steps plus
    up to rank helping writes plus k L-reads)."""
    system, aug = workload(k_plus_1, 2, 3, 7)
    per_op = {}
    steps = [e for e in system.trace.steps()]
    total_ops = sum(aug.atomic_counts.values()) + sum(aug.yield_counts.values())

    def measure():
        return len(steps) / max(total_ops, 1)

    ratio = benchmark(measure)
    table(
        f"E1c: primitive steps per operation (k+1={k_plus_1})",
        ["k+1", "total primitive steps", "ops", "steps/op"],
        [(k_plus_1, len(steps), total_ops, round(ratio, 1))],
    )
    assert ratio < 10 * k_plus_1
