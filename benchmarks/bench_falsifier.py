"""E4 — Theorem 3 as a falsifier, through the campaign engine.

Feeds the simulation protocols squeezed below the space bound and reports
what breaks — the mechanically observable content of "no such protocol
exists".  The headline row: consensus on fewer than n registers loses
agreement in essentially every schedule.

Since the parallel-campaign refactor the sweeps run through
``repro.campaign`` (the same code path ``repro campaign`` and
``examples/campaign.py`` use), so this benchmark times the engine's
single-worker path; the multi-worker speedup is measured separately in
``bench_campaign.py``."""

import pytest

from repro.bench.workloads import falsifier_sweep as falsify
from repro.campaign import sweep_simulation_campaign
from repro.core import kset_space_lower_bound
from repro.protocols import RacingConsensus, TruncatedProtocol


@pytest.mark.parametrize("k,x,m", [(1, 1, 1), (2, 1, 1), (2, 1, 2)])
def test_falsifier_sweep(benchmark, table, k, x, m):
    n, result = benchmark.pedantic(
        falsify, args=(k, x, m, range(15)), rounds=1, iterations=1
    )
    report = result.report
    bound = kset_space_lower_bound(n, k, x)
    assert m < bound
    assert report.runs == 15
    table(
        f"E4: outcomes below the bound (k={k}, x={x}, m={m}, n={n}, "
        f"bound={bound})",
        ["safety violations", "divergences", "fully decided",
         "runs/sec"],
        [(report.safety_violations, report.divergences,
          report.all_decided,
          f"{result.telemetry.runs_per_second:.1f}")],
    )
    if (k, x, m) in ((1, 1, 1), (2, 1, 1)):
        # Far below the bound, random schedules break safety every time.
        assert report.safety_violations == 15
        assert report.first_violating_seed == 0


def test_machinery_faithful_on_broken_protocols(benchmark, table):
    """Even while falsifying, the Lemma 28 correspondence holds: the
    violation belongs to the protocol, never to the simulation."""

    def sweep():
        result = sweep_simulation_campaign(
            TruncatedProtocol(RacingConsensus(3), 1), k=1, x=1,
            inputs=[0, 1], seeds=range(10), max_steps=300_000,
            verify_correspondence=True, workers=1,
        )
        return 10 - result.report.correspondence_failures

    faithful = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert faithful == 10
    table(
        "E4b: correspondence on falsifier runs",
        ["runs", "faithful"],
        [(10, faithful)],
    )
