"""E4 — Theorem 3 as a falsifier.

Feeds the simulation protocols squeezed below the space bound and reports
what breaks — the mechanically observable content of "no such protocol
exists".  The headline row: consensus on fewer than n registers loses
agreement in essentially every schedule."""

from collections import Counter

import pytest

from repro.core import (
    check_correspondence,
    kset_space_lower_bound,
    run_simulation,
    simulated_process_count,
)
from repro.protocols import KSetAgreementTask, RacingConsensus, TruncatedProtocol
from repro.runtime import RandomScheduler


def falsify(k, x, m, seeds):
    n = simulated_process_count(m, k, x)
    task = KSetAgreementTask(k)
    tally = Counter()
    for seed in seeds:
        protocol = TruncatedProtocol(RacingConsensus(n), m)
        outcome = run_simulation(
            protocol, k=k, x=x, inputs=list(range(k + 1)),
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        if outcome.task_violations(task):
            tally["safety"] += 1
        elif outcome.result.diverged:
            tally["diverged"] += 1
        else:
            tally["clean"] += 1
    return n, tally


@pytest.mark.parametrize("k,x,m", [(1, 1, 1), (2, 1, 1), (2, 1, 2)])
def test_falsifier_sweep(benchmark, table, k, x, m):
    n, tally = benchmark.pedantic(
        falsify, args=(k, x, m, range(15)), rounds=1, iterations=1
    )
    bound = kset_space_lower_bound(n, k, x)
    assert m < bound
    table(
        f"E4: outcomes below the bound (k={k}, x={x}, m={m}, n={n}, "
        f"bound={bound})",
        ["safety violations", "divergences", "clean runs"],
        [(tally["safety"], tally["diverged"], tally["clean"])],
    )
    if (k, x, m) in ((1, 1, 1), (2, 1, 1)):
        # Far below the bound, random schedules break safety every time.
        assert tally["safety"] == 15


def test_machinery_faithful_on_broken_protocols(benchmark, table):
    """Even while falsifying, the Lemma 28 correspondence holds: the
    violation belongs to the protocol, never to the simulation."""

    def sweep():
        faithful = 0
        for seed in range(10):
            protocol = TruncatedProtocol(RacingConsensus(3), 1)
            outcome = run_simulation(
                protocol, k=1, x=1, inputs=[0, 1],
                scheduler=RandomScheduler(seed), max_steps=300_000,
            )
            if check_correspondence(outcome).ok:
                faithful += 1
        return faithful

    faithful = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert faithful == 10
    table(
        "E4b: correspondence on falsifier runs",
        ["runs", "faithful"],
        [(10, faithful)],
    )
