"""E15 — fault-tolerance overhead: retry, checkpoint, and resume.

Runs the E13-style protocol sweep three ways — bare, with the full
fault-tolerance stack engaged (flaky chunks retried on a fake clock,
every chunk journaled, then resumed from the journal), and tables the
overhead.  The point of the number: the chaos machinery must stay off
the hot path, so a faulted+checkpointed run should cost close to the
bare run, and the resume should cost almost nothing (it replays the
journal instead of re-running chunks)."""

import time

from repro.bench.workloads import chaos_campaign
from repro.campaign import SweepProtocolJob, run_campaign
from repro.protocols import KSetAgreementTask, MinSeen

SEEDS = 120


def bare_sweep():
    job = SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(SEEDS)), task=KSetAgreementTask(3),
    )
    return run_campaign(job, workers=1, chunk_size=8)


def test_chaos_overhead(benchmark, table):
    start = time.perf_counter()
    bare = bare_sweep()
    bare_seconds = time.perf_counter() - start

    faulted, resumed = benchmark.pedantic(
        chaos_campaign, kwargs={"seeds": SEEDS}, rounds=1, iterations=1
    )
    assert faulted.report == bare.report
    assert resumed.report == bare.report
    assert repr(resumed.report) == repr(bare.report)

    rows = [
        ("bare", f"{bare_seconds:.3f}", 0, 0,
         f"{bare.telemetry.runs_per_second:.1f}"),
        ("faulted+checkpointed", f"{faulted.telemetry.wall_seconds:.3f}",
         faulted.telemetry.retries, 0,
         f"{faulted.telemetry.runs_per_second:.1f}"),
        ("resumed", f"{resumed.telemetry.wall_seconds:.3f}",
         resumed.telemetry.retries, resumed.telemetry.skipped_chunks,
         "-"),
    ]
    table(
        f"E15: fault-tolerance overhead on a {SEEDS}-seed sweep "
        f"(reports identical across all three runs)",
        ["run", "wall s", "retries", "resumed chunks", "runs/sec"],
        rows,
    )
    assert resumed.telemetry.total_units == 0  # resume re-runs nothing
