"""E11 — the BG simulation baseline (the paper's point of contrast).

Measures the cooperative (BG) simulation on the same workloads as the
revisionist one: completion, agreement-per-process, crash tolerance (f
crashes strand at most f simulated processes), and the safe-agreement
register overhead."""

import pytest

from repro.bench.workloads import bg_outcome
from repro.core import run_bg_simulation
from repro.protocols import RotatingWrites


@pytest.mark.parametrize("simulators", [1, 2, 3, 4])
def test_bg_completion(benchmark, table, simulators):
    inputs = [5, 2, 8, 1]

    outcome = benchmark(bg_outcome, simulators)
    assert outcome.completed_processes == len(inputs)
    table(
        f"E11: BG simulation ({simulators} simulators, 4 processes)",
        ["simulators", "processes completed", "primitive steps",
         "safe-agreement registers"],
        [(simulators, outcome.completed_processes, outcome.result.steps,
          outcome.system.total_registers())],
    )


def test_bg_crash_tolerance_sweep(benchmark, table):
    """f = 1 crashed simulator strands at most 1 simulated process."""
    from tests.core.test_bg import TestBGCrashTolerance

    def sweep():
        stranded = []
        for after in (1, 2, 3, 5, 8):
            scheduler = TestBGCrashTolerance.CrashAfterScheduler(
                seed=3, victim=0, after=after
            )
            outcome = run_bg_simulation(
                RotatingWrites(4, 3, rounds=3), [5, 2, 8, 1], simulators=3,
                scheduler=scheduler, max_steps=500_000, give_up_after=60,
            )
            stranded.append(4 - outcome.completed_processes)
        return stranded

    stranded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        "E11b: simulated processes stranded by one simulator crash",
        ["crash points tried", "max stranded", "bound (f=1)"],
        [(len(stranded), max(stranded), 1)],
    )
    assert max(stranded) <= 1
