"""E7 — the Appendix D reduction: simulator steps independent of ε.

Runs the two-covering-simulator reduction over an averaging protocol on m
registers and shows the Lemma 33 shape: step counts are a function of m
only; the crossover where they fall below log₃(1/ε) is the space lower
bound ⌊n/2⌋+1."""

import math

import pytest

from repro.bench.workloads import approx_reduction_outcome as simulate
from repro.core import check_correspondence


@pytest.mark.parametrize("m", [1, 2, 3])
def test_epsilon_independence(benchmark, table, m):
    def sweep():
        return {
            exponent: simulate(m, 2.0 ** -exponent).max_steps_taken
            for exponent in (2, 8, 16, 32)
        }

    steps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Lemma 33: steps are bounded by a function of m alone.  Very large ε
    # can finish *earlier* (the protocol decides in one round before the
    # covering machinery engages); from modest ε down, the count is flat.
    assert len({count for exp, count in steps.items() if exp >= 8}) == 1
    rows = [
        (f"2^-{exp}", round(math.log(2.0 ** exp, 3), 1), count,
         "below bound" if count < math.log(2.0 ** exp, 3) else "")
        for exp, count in sorted(steps.items())
    ]
    table(
        f"E7: simulator steps vs ε (m={m})",
        ["ε", "log3(1/ε)", "simulator steps", "crossover"],
        rows,
    )
    # For small enough ε, the simulation beats the Theorem 2 bound.
    assert steps[32] < math.log(2.0 ** 32, 3) or m >= 3


def test_steps_grow_with_m_only(benchmark, table):
    def sweep():
        return {m: simulate(m, 2.0 ** -12).max_steps_taken for m in (1, 2, 3)}

    by_m = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert by_m[1] <= by_m[2] <= by_m[3]
    table(
        "E7b: simulator steps vs m (ε fixed at 2^-12)",
        ["m", "simulator steps (f(m)² shape)"],
        sorted(by_m.items()),
    )


def test_reduction_remains_faithful(benchmark, table):
    def run():
        outcome = simulate(2, 2.0 ** -16)
        return check_correspondence(outcome)

    correspondence = benchmark(run)
    assert correspondence.ok
    table(
        "E7c: Lemma 28 correspondence on the Appendix D reduction",
        ["σ length", "hidden steps", "ok"],
        [(len(correspondence.entries), correspondence.hidden_steps, "yes")],
    )
