"""E3 — the revisionist simulation, positive runs.

Feeds the simulation correct wait-free (weak-task) protocols and measures:
every simulator decides (wait-freedom), validity holds, the amount of
covering machinery exercised (Block-Updates, revisions), and wall time
across (k, x, m)."""

import pytest

from repro.bench.workloads import positive_simulation
from repro.core import run_simulation
from repro.protocols import RotatingWrites
from repro.runtime import RandomScheduler


@pytest.mark.parametrize("k,x,m", [(1, 1, 2), (2, 1, 3), (3, 1, 2), (3, 2, 2)])
def test_simulation_positive(benchmark, table, k, x, m):
    n = (k + 1 - x) * m + x
    inputs = list(range(10, 10 + k + 1))

    outcome = benchmark(positive_simulation, k, x, m, 31)
    assert outcome.result.completed
    assert outcome.all_decided
    for value in outcome.decisions.values():
        assert value in inputs  # validity
    table(
        f"E3: simulation run (k={k}, x={x}, m={m}, n={n})",
        ["simulators", "decided", "Block-Updates", "revisions",
         "primitive steps"],
        [(k + 1, len(outcome.decisions), outcome.block_update_count(),
          outcome.revision_count(), outcome.result.steps)],
    )


def test_simulation_wait_freedom_across_seeds(benchmark, table):
    """Lemma 30's conclusion, measured: across schedules, all simulators
    decide within a bounded number of operations."""
    protocol = RotatingWrites(7, 3, rounds=5)

    def sweep():
        decided, max_steps = 0, 0
        for seed in range(15):
            outcome = run_simulation(
                protocol, k=2, x=1, inputs=[7, 8, 9],
                scheduler=RandomScheduler(seed), max_steps=600_000,
            )
            if outcome.all_decided:
                decided += 1
            max_steps = max(max_steps, outcome.result.steps)
        return decided, max_steps

    decided, max_steps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert decided == 15
    table(
        "E3b: wait-freedom sweep (k=2, x=1, m=3)",
        ["schedules", "all-decided", "max primitive steps"],
        [(15, decided, max_steps)],
    )


@pytest.mark.parametrize("m", [2, 3, 4])
def test_covering_work_grows_with_m(benchmark, table, m):
    """Lemma 30's counting: a covering simulator needs more Block-Updates
    to grow blocks as m rises."""
    n = 2 * m + 1
    protocol = RotatingWrites(n, m, rounds=2 * m + 2)

    def run():
        return run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(11), max_steps=800_000,
        )

    outcome = benchmark(run)
    table(
        f"E3c: covering work vs m (m={m})",
        ["m", "Block-Updates", "revisions", "steps"],
        [(m, outcome.block_update_count(), outcome.revision_count(),
          outcome.result.steps)],
    )
