"""E16 — symmetry reduction: superlinear state-space collapse.

Explores ``AnonymousSweepConsensus(n, m=2)`` — fully symmetric by
construction — with and without symmetry reduction across a grid of
``n``, and tables visited configurations, wall time, and the
unreduced/reduced ratio.  The measured claims:

* both modes agree on the verdict (the differential contract);
* the reduction ratio *grows* with ``n`` (superlinear collapse toward
  ``n!``), so symmetry is a state-space lever, not a constant-factor
  tweak — this is asserted, not just printed;
* the benchmark-sized instance (the E16 payload) is faster reduced
  than unreduced by well over the bench comparator's 1.5× threshold,
  which is what the CI gate against ``baselines/pre_symmetry``
  enforces on every push.
"""

from repro.bench.workloads import explore_symmetry

GRID = [2, 3, 4, 5]
BOUNDS = dict(max_steps=10, prefix_depth=2)


def run_at(n, symmetry):
    return explore_symmetry(symmetry=symmetry, workers=1, n=n, **BOUNDS)


def test_symmetry_reduction_grows_with_n(benchmark, table):
    results = {}
    for n in GRID[:-1]:
        results[n] = (run_at(n, False), run_at(n, True))
    full, reduced = run_at(GRID[-1], False), benchmark.pedantic(
        run_at, args=(GRID[-1], True), rounds=1, iterations=1
    )
    results[GRID[-1]] = (full, reduced)

    rows, ratios = [], []
    for n, (unreduced, symmetric) in results.items():
        assert unreduced.report.safe == symmetric.report.safe
        ratio = (
            unreduced.report.configurations
            / symmetric.report.configurations
        )
        ratios.append(ratio)
        rows.append((
            n,
            f"{unreduced.report.configurations:,}",
            f"{symmetric.report.configurations:,}",
            f"{ratio:.2f}x",
            f"{unreduced.telemetry.wall_seconds:.3f}",
            f"{symmetric.telemetry.wall_seconds:.3f}",
        ))
    table(
        "E16: symmetry-reduced exploration of anonymous-sweep(m=2), "
        "10-step horizon (verdicts identical in every row)",
        ["n", "configs (full)", "configs (reduced)", "ratio",
         "full wall s", "reduced wall s"],
        rows,
    )
    # The collapse is superlinear: every added process widens the gap.
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    assert ratios[-1] > 2 * ratios[0], ratios
