"""E5 — the Appendix A conversion (Theorem 4).

Measures the shortest-solo-path policy construction, verifies the
space-preservation and obstruction-freedom claims on the example machines,
and quantifies the solo-step blowup the paper's Future Work section warns
about (the conversion preserves space, not solo step complexity)."""


import pytest

from repro.bench.workloads import solo_termination_probe
from repro.runtime import RandomScheduler, System
from repro.solo import (
    ConvertedMachine,
    SpinOrCommit,
    TokenRace,
    converted_body,
    shortest_solo_path,
)
from repro.solo.conversion import make_registers, solo_run_machine


@pytest.mark.parametrize("machine_factory,value", [
    (SpinOrCommit, "v"),
    (TokenRace, 1),
])
def test_policy_construction_cost(benchmark, table, machine_factory, value):
    machine = machine_factory()

    def build():
        converted = ConvertedMachine(machine)
        output, measures, _covered = solo_run_machine(converted, value)
        return converted, output, measures

    converted, output, measures = benchmark(build)
    assert output is not None
    table(
        f"E5: conversion of {machine.name}",
        ["registers before", "registers after", "solo steps", "decided"],
        [(machine.registers, converted.registers, len(measures),
          repr(output))],
    )
    assert converted.registers == machine.registers


def test_obstruction_freedom_probe(benchmark, table):
    """Converted machines terminate solo from adversarial contents."""
    configurations, worst = benchmark(solo_termination_probe)
    table(
        "E5b: solo termination from all 9 register contents",
        ["configurations probed", "worst solo steps"],
        [(configurations, worst)],
    )
    assert worst <= 20


def test_solo_blowup_vs_lucky_chooser(benchmark, table):
    """The conversion can take more solo steps than the luckiest
    nondeterministic chooser — the open problem the paper's Future Work
    flags (bounding the solo step complexity of converted protocols)."""
    machine = TokenRace()
    converted = ConvertedMachine(machine)

    def measure():
        lucky = len(shortest_solo_path(machine, machine.initial_state(1), {}))
        _out, measures, _cov = solo_run_machine(
            converted, 1, initial_contents={0: 0, 1: 0}
        )
        return lucky, len(measures)

    lucky, converted_steps = benchmark(measure)
    table(
        "E5c: solo steps — luckiest chooser vs converted machine",
        ["luckiest nondeterministic", "converted (adversarial contents)"],
        [(lucky, converted_steps)],
    )
    assert converted_steps >= lucky


def test_concurrent_converted_runs(benchmark, table):
    machine = TokenRace()
    converted = ConvertedMachine(machine)

    def sweep():
        finished = 0
        for seed in range(10):
            registers = make_registers(machine, prefix=f"R{seed}")
            system = System()
            for value in (0, 1):
                system.add_process(converted_body(converted, registers, value))
            result = system.run(RandomScheduler(seed), max_steps=3_000)
            finished += len(result.outputs)
        return finished

    finished = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        "E5d: concurrent converted processes over 10 schedules",
        ["process runs", "decided"],
        [(20, finished)],
    )
    assert finished >= 15  # obstruction-free, not wait-free
