"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E14), as a thin pytest adapter over the shared
workloads in :mod:`repro.bench.workloads` (the same code path ``repro
bench run`` measures).  Benchmarks both *time* the workload (via
pytest-benchmark) and *print* the experiment's table rows, so running

    pytest benchmarks/ --benchmark-only -s

reproduces every table of EXPERIMENTS.md.  Collection of bench_*.py is
configured by ``benchmarks/pytest.ini``; the repo-root pytest.ini never
collects these modules (see docs/BENCHMARKS.md).
"""

from __future__ import annotations

import pytest


def print_table(title, headers, rows):
    """Render one experiment table to stdout (captured unless -s)."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    print()
    print(f"### {title}")
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table
