"""E6 — approximate-agreement step complexity vs the Hoest–Shavit bound.

Measures the per-process step counts of the two upper-bound protocols as ε
shrinks and compares them to the Theorem 2 lower bound log₃(1/ε): both
protocols track Θ(log₂(1/ε)), a constant factor above the bound."""

import math

import pytest

from repro.bench.workloads import approx_protocol_steps as steps_of
from repro.protocols import (
    ApproxAgreementTask,
    AveragingApprox,
    BisectionApprox,
    run_protocol,
)
from repro.runtime import RandomScheduler, RoundRobinScheduler


@pytest.mark.parametrize("exponent", [4, 8, 16, 24])
def test_bisection_steps(benchmark, table, exponent):
    eps = 2.0 ** -exponent

    def run():
        return steps_of(BisectionApprox(eps), [0, 1], RoundRobinScheduler())

    steps = benchmark(run)
    lower = math.log(1 / eps, 3)
    table(
        f"E6: bisection protocol steps (ε=2^-{exponent})",
        ["ε", "log3(1/ε) lower bound", "measured steps", "ratio"],
        [(f"2^-{exponent}", round(lower, 1), steps, round(steps / lower, 2))],
    )
    assert steps >= lower  # Theorem 2 holds on the implementation
    assert steps <= 4 * exponent  # Θ(log 1/ε) upper shape


@pytest.mark.parametrize("exponent", [4, 8, 16, 24])
def test_averaging_steps(benchmark, table, exponent):
    eps = 2.0 ** -exponent

    def run():
        return steps_of(AveragingApprox(2, eps), [0, 1], RoundRobinScheduler())

    steps = benchmark(run)
    lower = math.log(1 / eps, 3)
    table(
        f"E6b: averaging protocol steps (ε=2^-{exponent})",
        ["ε", "log3(1/ε) lower bound", "measured steps"],
        [(f"2^-{exponent}", round(lower, 1), steps)],
    )
    assert steps >= lower


def test_outputs_respect_epsilon(benchmark, table):
    """Safety sweep attached to the measurement: random schedules, ε gaps."""

    def sweep():
        worst = 0.0
        eps = 2.0 ** -10
        for seed in range(10):
            protocol = AveragingApprox(3, eps)
            inputs = [0, 1, seed % 2]
            system, result = run_protocol(
                protocol, inputs, RandomScheduler(seed), max_steps=200_000
            )
            assert ApproxAgreementTask(eps).check(inputs, result.outputs) == []
            values = list(result.outputs.values())
            worst = max(worst, max(values) - min(values))
        return worst

    worst = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        "E6c: worst observed output gap (ε=2^-10)",
        ["ε", "worst gap"],
        [("2^-10", worst)],
    )
    assert worst <= 2.0 ** -10
