"""E13 — the parallel campaign engine: speedup and identity.

Runs a 240-seed Lemma-28-verified simulation sweep through
``repro.campaign`` at ``workers=1`` and ``workers=4`` and tables the
wall-clock speedup alongside proof that the two reports are equal — the
perf win is measured, not asserted.  The ≥2× speedup expectation is only
enforced when the host actually has ≥4 CPUs and the pool path engaged
(on smaller hosts the table still prints, with the fallback noted)."""

import os

from repro.bench.workloads import campaign_sweep

SEEDS = 240


def run_at(workers):
    return campaign_sweep(workers=workers, seeds=SEEDS)


def test_campaign_speedup(benchmark, table):
    serial = run_at(1)
    parallel = benchmark.pedantic(
        run_at, args=(4,), rounds=1, iterations=1
    )
    assert parallel.report == serial.report
    assert parallel.report.summary() == serial.report.summary()
    assert serial.report.clean and serial.report.runs == 240

    speedup = (
        serial.telemetry.wall_seconds / parallel.telemetry.wall_seconds
        if parallel.telemetry.wall_seconds > 0 else float("inf")
    )
    rows = []
    for result in (serial, parallel):
        t = result.telemetry
        rows.append((
            t.workers, t.mode, f"{t.wall_seconds:.2f}",
            f"{t.runs_per_second:.1f}", f"{t.utilization:.0%}",
        ))
    table(
        f"E13: campaign speedup on a 240-seed verified sweep "
        f"(host cpus={os.cpu_count()}, speedup={speedup:.2f}x, "
        f"reports identical)",
        ["workers", "mode", "wall s", "runs/sec", "utilization"],
        rows,
    )
    if (os.cpu_count() or 1) >= 4 and parallel.telemetry.mode.startswith(
        "pool"
    ):
        assert speedup >= 2.0, (
            f"expected >=2x speedup at workers=4, got {speedup:.2f}x"
        )
