"""E14 — sharded bounded-exhaustive exploration: throughput and identity.

Explores racing consensus (n=3) to a 17-step horizon through
``repro.campaign`` at ``workers=1`` and ``workers=4``, sharded over the
27 depth-3 schedule prefixes, and tables configurations/second alongside
proof that the two :class:`ExplorationReport` objects are identical —
the perf win is measured, not asserted.  The ≥2× speedup expectation is
only enforced when the host actually has ≥4 CPUs and the pool path
engaged (on smaller hosts the table still prints, with the fallback
noted)."""

import os

from repro.bench.workloads import explore_sharded

BOUNDS = dict(max_configs=400_000, max_steps=17, prefix_depth=3)


def run_at(workers):
    return explore_sharded(workers=workers, **BOUNDS)


def test_explore_speedup(benchmark, table):
    serial = run_at(1)
    parallel = benchmark.pedantic(
        run_at, args=(4,), rounds=1, iterations=1
    )
    assert parallel.report == serial.report
    assert repr(parallel.report) == repr(serial.report)
    assert parallel.report.summary() == serial.report.summary()
    assert serial.report.safe

    speedup = (
        serial.telemetry.wall_seconds / parallel.telemetry.wall_seconds
        if parallel.telemetry.wall_seconds > 0 else float("inf")
    )
    rows = []
    for result in (serial, parallel):
        t = result.telemetry
        configs_per_second = (
            result.report.configurations / t.wall_seconds
            if t.wall_seconds > 0 else float("inf")
        )
        rows.append((
            t.workers, t.mode, f"{t.wall_seconds:.2f}",
            f"{configs_per_second:,.0f}", f"{t.utilization:.0%}",
        ))
    table(
        f"E14: sharded exploration of {serial.report.configurations} "
        f"configurations over 27 prefix subtrees "
        f"(host cpus={os.cpu_count()}, speedup={speedup:.2f}x, "
        f"reports identical)",
        ["workers", "mode", "wall s", "configs/sec", "utilization"],
        rows,
    )
    if (os.cpu_count() or 1) >= 4 and parallel.telemetry.mode.startswith(
        "pool"
    ):
        assert speedup >= 2.0, (
            f"expected >=2x speedup at workers=4, got {speedup:.2f}x"
        )
