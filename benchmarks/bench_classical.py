"""E10 — the classical baselines the paper builds on and contrasts with.

* FLP valence: bivalent initial configurations exist for real consensus
  protocols, and witness schedules replay.
* Burns–Lynch covering: processes can be driven to cover all components.
* Exhaustive small-scope checking: the engine behind the protocol safety
  results, timed.
"""

import pytest

from repro.analysis import (
    bivalent_initial_configurations,
    build_covering,
    classify_valence,
    explore_protocol,
)
from repro.bench.workloads import classical_falsification
from repro.analysis.covering import release_covering
from repro.protocols import RacingConsensus


def test_bivalence_classification(benchmark, table):
    report = benchmark(classify_valence, RacingConsensus(2), [0, 1])
    assert report.bivalent
    table(
        "E10: FLP valence of racing consensus, inputs (0, 1)",
        ["reachable decisions", "bivalent", "witness for 0", "witness for 1"],
        [(sorted(report.values), "yes",
          report.witnesses.get(0), report.witnesses.get(1))],
    )


def test_bivalent_initial_grid(benchmark, table):
    vectors = [(a, b) for a in (0, 1) for b in (0, 1)]
    results = benchmark(
        bivalent_initial_configurations, RacingConsensus(2), vectors
    )
    table(
        "E10b: bivalent initial input vectors (FLP Lemma 2 shape)",
        ["bivalent vectors"],
        [(sorted(vector for vector, _ in results),)],
    )
    assert {v for v, _ in results} == {(0, 1), (1, 0)}


@pytest.mark.parametrize("n", [2, 3, 4])
def test_covering_construction(benchmark, table, n):
    report = benchmark(build_covering, RacingConsensus(n), [i % 2 for i in range(n)])
    assert report.size == n
    contents = release_covering(report)
    table(
        f"E10c: Burns-Lynch covering of n={n} components",
        ["covered", "steps used", "block write obliterates"],
        [(report.size, report.steps_used,
          "yes" if all(c is not None for c in contents) else "no")],
    )


def test_commit_adopt_certification(benchmark, table):
    """The commit-adopt object is certified exhaustively (finite space):
    the engine inside the cited obstruction-free consensus constructions."""
    from repro.protocols.commit_adopt import CommitAdopt, CommitAdoptTask

    def certify():
        total = 0
        for inputs in ((0, 1), (1, 0), (0, 0), (1, 1)):
            report = explore_protocol(
                CommitAdopt(2), list(inputs), CommitAdoptTask(),
                max_configs=2_000_000,
            )
            assert report.safe and not report.truncated
            total += report.configurations
        return total

    configurations = benchmark.pedantic(certify, rounds=1, iterations=1)
    table(
        "E10e: commit-adopt certified exhaustively (n=2, all input pairs)",
        ["input vectors", "configurations", "violations"],
        [(4, configurations, 0)],
    )


def test_commit_adopt_consensus_space_tradeoff(benchmark, table):
    """Rounds of commit-adopt need fresh registers: space grows linearly
    with the round budget — the trap the paper's n-register bound avoids."""
    from repro.protocols.commit_adopt import CommitAdoptConsensus

    def rows():
        return [
            (rounds, CommitAdoptConsensus(2, max_rounds=rounds).m)
            for rounds in (1, 2, 4, 8, 16)
        ]

    data = benchmark(rows)
    table(
        "E10f: CA-consensus register count vs round budget (n=2)",
        ["round budget", "registers (2n per round)"],
        data,
    )
    assert data[-1][1] == 64


def test_exhaustive_checking_cost(benchmark, table):
    """The model-checker sweep that validated every protocol, timed on the
    1-register impossibility instance [DGFKR15's k-set 1-register result,
    in the small]."""
    report = benchmark(classical_falsification, 300_000, 40)
    assert not report.safe
    table(
        "E10d: exhaustive falsification of 3-process consensus on 1 register",
        ["configurations", "violation found", "counterexample length"],
        [(report.configurations, "yes", len(report.counterexample))],
    )
