"""E12 — the full stack on raw registers.

Measures the cost of lowering everything to atomic reads/writes via the
[AAD+93] constructions: protocols over the m-register multi-writer
snapshot, and the complete revisionist reduction with H built from
registers.  The interesting ratio is "register steps per high-level
operation" — the concrete price of the paper's w.l.o.g. assumption.
"""

import pytest

from repro.bench.workloads import registers_lowering
from repro.core import run_simulation
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
    run_protocol,
)
from repro.runtime import RandomScheduler


@pytest.mark.parametrize("n", [2, 3, 4])
def test_protocol_lowering_cost(benchmark, table, n):
    inputs = list(range(n))
    protocol = MinSeen(n, rounds=2)

    system, result, snapshot = benchmark(registers_lowering, n)
    assert result.completed
    native_system, native_result = run_protocol(
        protocol, inputs, RandomScheduler(5)
    )
    table(
        f"E12: register-level lowering (min-seen, n={n})",
        ["native snapshot steps", "register steps", "blow-up",
         "registers used"],
        [(native_result.steps, result.steps,
          round(result.steps / native_result.steps, 1),
          snapshot.register_count())],
    )
    assert snapshot.register_count() == protocol.m


def test_simulation_on_registers(benchmark, table):
    inputs = [4, 7]

    def run():
        return run_simulation(
            RotatingWrites(5, 2, rounds=3), k=1, x=1, inputs=inputs,
            scheduler=RandomScheduler(2), max_steps=1_000_000,
            register_level=True,
        )

    outcome = benchmark(run)
    assert outcome.all_decided
    native = run_simulation(
        RotatingWrites(5, 2, rounds=3), k=1, x=1, inputs=inputs,
        scheduler=RandomScheduler(2), max_steps=1_000_000,
    )
    table(
        "E12b: the whole reduction on raw registers",
        ["native steps", "register steps", "registers (H + helping)"],
        [(native.result.steps, outcome.result.steps,
          outcome.aug.register_count())],
    )


def test_falsifier_on_registers(benchmark, table):
    def sweep():
        hits = 0
        for seed in range(5):
            broken = TruncatedProtocol(RacingConsensus(2), 1)
            outcome = run_simulation(
                broken, k=1, x=1, inputs=[0, 1],
                scheduler=RandomScheduler(seed), max_steps=800_000,
                register_level=True,
            )
            if outcome.task_violations(KSetAgreementTask(1)):
                hits += 1
        return hits

    hits = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(
        "E12c: Theorem 3 falsified on raw registers",
        ["runs", "agreement violations"],
        [(5, hits)],
    )
    assert hits == 5
