"""E9 — the [AAD+93] snapshot-from-registers substrate.

Measures scan/update cost of the wait-free constructions as the number of
processes grows, and machine-checks linearizability of the generated
histories — the justification for the paper's "assume an atomic snapshot
w.l.o.g."."""

import pytest

from repro.analysis.linearizability import (
    SnapshotSpec,
    check_linearizable,
    history_from_trace,
)
from repro.bench.workloads import snapshot_single_writer as run_single_writer
from repro.memory.afek import AfekMWSnapshot
from repro.runtime import RandomScheduler, System


@pytest.mark.parametrize("n", [2, 4, 8, 12])
def test_single_writer_cost(benchmark, table, n):
    system = benchmark(run_single_writer, n, 3, 99)
    steps = len(system.trace.steps())
    ops = n * 3 * 2
    table(
        f"E9: AADGMS single-writer snapshot cost (n={n})",
        ["n", "ops", "register steps", "steps/op"],
        [(n, ops, steps, round(steps / ops, 1))],
    )
    # Wait-free: the whole run is bounded by O(ops * n^2) register steps.
    assert steps <= ops * (4 * n * n + 4 * n + 4)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_single_writer_linearizable(benchmark, table, seed):
    system = run_single_writer(3, 2, seed)
    history = history_from_trace(system.trace, "S")

    ok, witness = benchmark(check_linearizable, history, SnapshotSpec(3))
    assert ok
    table(
        f"E9b: linearizability check (seed={seed})",
        ["operations", "linearizable"],
        [(len(history), "yes")],
    )


@pytest.mark.parametrize("writers,m", [(3, 2), (4, 3), (6, 3)])
def test_multi_writer_cost(benchmark, table, writers, m):
    def run():
        snapshot = AfekMWSnapshot("MW", components=m, initial=None)
        system = System()

        def body(proc):
            for r in range(2):
                yield from snapshot.update(proc.pid, (proc.pid + r) % m, r)
                yield from snapshot.scan(proc.pid)

        for _ in range(writers):
            system.add_process(body)
        result = system.run(RandomScheduler(5), max_steps=2_000_000)
        assert result.completed
        return system, snapshot

    system, snapshot = benchmark(run)
    assert snapshot.register_count() == m
    table(
        f"E9c: multi-writer snapshot from m registers ({writers} writers)",
        ["writers", "m", "registers used", "primitive steps"],
        [(writers, m, snapshot.register_count(), len(system.trace.steps()))],
    )
