"""Ablations — the design choices DESIGN.md §4 calls out, measured.

A1. Anchor disqualification (Appendix C's "no wider Block-Update after
    B"): drop it and the Lemma 28 correspondence collapses — the rule is
    load-bearing, and the checker detects its absence.
A2. Normal-form purity: the same schedule replayed over the pure
    configuration space versus executed through the full runtime gives
    identical decisions; the pure replay is the fast path that makes
    exhaustive model checking feasible.
A3. Space accounting: components actually written per execution versus the
    declared m versus the Theorem 3 bound — space complexity is a max over
    executions, which is why adversarial constructions are needed at all.
"""

import random

import pytest

from repro.analysis import measure_protocol_space, replay_schedule
from repro.core import check_correspondence, kset_space_lower_bound, run_simulation
from repro.protocols import RacingConsensus, RotatingWrites, run_protocol
from repro.runtime import RandomScheduler


def test_a1_anchor_rule_is_load_bearing(benchmark, table):
    def sweep(unsafe):
        broken = 0
        for seed in range(10):
            protocol = RotatingWrites(7, 3, rounds=8)
            outcome = run_simulation(
                protocol, k=2, x=1, inputs=[5, 2, 8],
                scheduler=RandomScheduler(seed), max_steps=600_000,
                unsafe_anchor=unsafe,
            )
            if not check_correspondence(outcome).ok:
                broken += 1
        return broken

    broken_unsafe = benchmark.pedantic(
        sweep, args=(True,), rounds=1, iterations=1
    )
    broken_safe = sweep(False)
    table(
        "A1: dropping the anchor disqualification rule",
        ["variant", "runs", "Lemma 28 violations"],
        [("paper rule", 10, broken_safe),
         ("ablated (no disqualification)", 10, broken_unsafe)],
    )
    assert broken_safe == 0
    assert broken_unsafe == 10


def test_a2_pure_replay_matches_runtime(benchmark, table):
    protocol = RacingConsensus(3)
    inputs = [0, 1, 1]
    rng = random.Random(4)
    schedules = []
    for seed in range(10):
        system, result = run_protocol(
            protocol, inputs, RandomScheduler(seed), max_steps=50_000
        )
        schedule = [event.pid for event in system.trace.steps()]
        schedules.append((schedule, result.outputs))

    def replay_all():
        agree = 0
        for schedule, outputs in schedules:
            if replay_schedule(protocol, inputs, schedule) == outputs:
                agree += 1
        return agree

    agree = benchmark(replay_all)
    table(
        "A2: pure replay vs runtime execution (same schedules)",
        ["schedules", "identical decisions"],
        [(len(schedules), agree)],
    )
    assert agree == len(schedules)


@pytest.mark.parametrize("n", [3, 4, 6])
def test_a3_space_used_vs_declared_vs_bound(benchmark, table, n):
    protocol = RacingConsensus(n)
    inputs = [i % 2 for i in range(n)]
    rng = random.Random(n)
    schedules = [[0] * 30] + [
        [rng.randrange(n) for _ in range(120)] for _ in range(10)
    ]

    report = benchmark(measure_protocol_space, protocol, inputs, schedules)
    bound = kset_space_lower_bound(n, 1, 1)
    table(
        f"A3: components written, racing consensus n={n}",
        ["declared m", "Theorem 3 bound", "min per run (solo)",
         "max per run", "mean"],
        [(report.declared_m, bound, report.min_used, report.max_used,
          round(report.mean_used, 2))],
    )
    assert report.declared_m == bound == n
    assert report.min_used == 1  # the solo run touches one component
    assert report.max_used <= n
