"""E8 — the Lemma 28 correspondence checker.

Measures the checker's cost on real simulation traces and counts how much
past-revision it validates (hidden steps inserted and re-derived)."""

import pytest

from repro.bench.workloads import invariant_outcome as outcome_for
from repro.core import check_correspondence


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_checker_cost(benchmark, table, seed):
    outcome = outcome_for(seed)

    correspondence = benchmark(check_correspondence, outcome)
    assert correspondence.ok
    table(
        f"E8: correspondence check (seed={seed})",
        ["real ops", "σ length", "hidden steps"],
        [(len(outcome.system.trace.steps()), len(correspondence.entries),
          correspondence.hidden_steps)],
    )


def test_revision_statistics(benchmark, table):
    """How often pasts get revised across schedules, and how many of the
    revisions carry non-empty hidden executions."""

    def sweep():
        total_hidden, total_revisions, checked = 0, 0, 0
        for seed in range(20):
            outcome = outcome_for(seed)
            correspondence = check_correspondence(outcome)
            assert correspondence.ok, correspondence.violations
            total_hidden += correspondence.hidden_steps
            total_revisions += outcome.revision_count()
            checked += 1
        return checked, total_revisions, total_hidden

    checked, revisions, hidden = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert hidden > 0  # the machinery genuinely revises pasts
    table(
        "E8b: revision statistics over 20 schedules (k=2, x=1, m=3)",
        ["runs checked", "revisions", "hidden steps validated"],
        [(checked, revisions, hidden)],
    )
