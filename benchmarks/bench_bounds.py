"""E2 — the Theorem 3 bound table.

Regenerates the lower-vs-upper bound grid across (n, k, x): who needs how
many registers, where the bounds meet (consensus; asymptotically for
constant k, x), and the simulation-arithmetic pivot (m simulatable iff
strictly below the bound).
"""

from repro.bench.workloads import bounds_grid
from repro.core import (
    kset_space_lower_bound,
    kset_space_upper_bound,
    max_simulatable_registers,
    simulated_process_count,
)


def test_bound_grid(benchmark, table):
    rows = benchmark(bounds_grid, 64)
    assert rows
    # Print the headline slice: x = 1 (obstruction-free), selected n.
    display = [
        (r.n, r.k, r.x, r.lower, r.upper, r.gap, "yes" if r.tight else "")
        for r in rows
        if r.x == 1 and r.n in (4, 8, 16, 32, 64) and r.k in (1, 2, 4, 8)
    ]
    table(
        "E2: space bounds for x-obstruction-free k-set agreement (x=1 slice)",
        ["n", "k", "x", "lower ⌊(n-x)/(k+1-x)⌋+1", "upper n-k+x", "gap", "tight"],
        display,
    )
    # Consensus rows are tight everywhere.
    assert all(r.tight for r in rows if r.k == 1)


def test_consensus_tightness_series(benchmark, table):
    def series():
        return [
            (n, kset_space_lower_bound(n, 1, 1), kset_space_upper_bound(n, 1, 1))
            for n in range(2, 513)
        ]

    rows = benchmark(series)
    assert all(low == up == n for n, low, up in rows)
    table(
        "E2b: consensus bounds meet at exactly n registers",
        ["n", "lower", "upper"],
        [row for row in rows if row[0] in (2, 8, 64, 512)],
    )


def test_simulation_pivot(benchmark, table):
    """m registers are simulatable iff m < lower bound — the proof's hinge."""

    def pivot_rows():
        rows = []
        for k in (1, 2, 4):
            for x in range(1, k + 1):
                for m in (1, 2, 4, 8):
                    n = simulated_process_count(m, k, x)
                    rows.append(
                        (k, x, m, n, max_simulatable_registers(n, k, x),
                         kset_space_lower_bound(n, k, x))
                    )
        return rows

    rows = benchmark(pivot_rows)
    for k, x, m, n, max_m, lower in rows:
        assert max_m >= m
        assert lower >= m + 1
    table(
        "E2c: simulation pivot — n processes needed to simulate m registers",
        ["k", "x", "m", "n=(k+1-x)m+x", "max simulatable m", "Thm 3 bound"],
        rows,
    )
