#!/usr/bin/env python
"""A full experiment campaign in one command — hardware-parallel.

Runs multi-seed sweeps over the main experiment families — positive
simulation runs (with Lemma 28 verification), the Theorem 3 falsifier,
protocol safety, and schedule fuzzing — through the parallel campaign
engine (`repro.campaign`), and prints one consolidated report with
throughput telemetry per family.  The engine shards seeds across a
worker pool and merges partial reports deterministically, so the numbers
printed here are identical for any worker count (docs/CAMPAIGNS.md).
This is the "reproduce the paper's claims on my machine" entry point;
the per-table detail lives in `pytest benchmarks/ --benchmark-only -s`.

Usage:  python examples/campaign.py [seeds] [workers]
"""

import sys

from repro.campaign import (
    fuzz_campaign,
    sweep_protocol_campaign,
    sweep_simulation_campaign,
)
from repro.core import kset_space_lower_bound, run_approx_simulation
from repro.protocols import (
    AveragingApprox,
    CommitAdopt,
    CommitAdoptTask,
    KSetAgreementTask,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.runtime import RoundRobinScheduler


def main():
    seed_count = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    seeds = range(seed_count)
    print(f"campaign over {seed_count} seeds per experiment "
          f"(workers={'auto' if workers is None else workers})\n")

    print("1. Revisionist simulation, positive runs (Lemma 28 verified):")
    result = sweep_simulation_campaign(
        RotatingWrites(7, 3, rounds=6), k=2, x=1, inputs=[5, 2, 8],
        seeds=seeds, verify_correspondence=True, workers=workers,
    )
    print(f"   {result.report.summary()}")
    print(f"   {result.telemetry.summary()}")
    assert result.report.clean
    assert result.report.all_decided == result.report.runs

    print("\n2. Theorem 3 falsifier (consensus on 1 register, bound is "
          f"{kset_space_lower_bound(2, 1, 1)}):")
    result = sweep_simulation_campaign(
        TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1, inputs=[0, 1],
        seeds=seeds, task=KSetAgreementTask(1), workers=workers,
    )
    print(f"   {result.report.summary()}")
    print(f"   {result.telemetry.summary()}")
    print(f"   first violating seed: {result.report.first_violating_seed}")
    assert result.report.safety_violations == result.report.runs

    print("\n3. Protocol safety sweeps:")
    for protocol, inputs, task in (
        (RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1)),
        (CommitAdopt(3), [0, 1, 2], CommitAdoptTask()),
        (AveragingApprox(3, 2 ** -8), [0, 1, 0], None),
    ):
        result = sweep_protocol_campaign(
            protocol, inputs, seeds, task=task, max_steps=100_000,
            workers=workers,
        )
        print(f"   {protocol.name}: {result.report.summary()}")
        print(f"      {result.telemetry.summary()}")
        assert result.report.safety_violations == 0

    print("\n4. Schedule fuzz (truncated consensus must lose agreement):")
    result = fuzz_campaign(
        TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
        KSetAgreementTask(1), runs=max(100, 10 * seed_count),
        schedule_length=40, seed=1, workers=workers,
    )
    print(f"   {result.report.summary()}")
    print(f"   {result.telemetry.summary()}")
    assert not result.report.clean
    assert result.report.minimized is not None

    print("\n5. Appendix D ε-independence (single illustrative run):")
    for exponent in (8, 24):
        protocol = TruncatedProtocol(AveragingApprox(4, 2.0 ** -exponent), 2)
        outcome = run_approx_simulation(
            protocol, [0, 1], RoundRobinScheduler()
        )
        print(f"   ε=2^-{exponent}: simulator steps = "
              f"{outcome.max_steps_taken}")

    print("\ncampaign complete: all claims held.")


if __name__ == "__main__":
    main()
