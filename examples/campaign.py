#!/usr/bin/env python
"""A full experiment campaign in one command.

Runs multi-seed sweeps over the main experiment families — positive
simulation runs (with Lemma 28 verification), the Theorem 3 falsifier, and
protocol safety — and prints one consolidated report.  This is the
"reproduce the paper's claims on my machine" entry point; the per-table
detail lives in `pytest benchmarks/ --benchmark-only -s`.

Usage:  python examples/campaign.py [seeds]
"""

import sys

from repro.core import kset_space_lower_bound, run_approx_simulation
from repro.core.sweep import sweep_protocol, sweep_simulation
from repro.protocols import (
    AveragingApprox,
    CommitAdopt,
    CommitAdoptTask,
    KSetAgreementTask,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.runtime import RoundRobinScheduler


def main():
    seed_count = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    seeds = range(seed_count)
    print(f"campaign over {seed_count} seeds per experiment\n")

    print("1. Revisionist simulation, positive runs (Lemma 28 verified):")
    report = sweep_simulation(
        RotatingWrites(7, 3, rounds=6), k=2, x=1, inputs=[5, 2, 8],
        seeds=seeds, verify_correspondence=True,
    )
    print(f"   {report.summary()}")
    assert report.clean and report.all_decided == report.runs

    print("\n2. Theorem 3 falsifier (consensus on 1 register, bound is "
          f"{kset_space_lower_bound(2, 1, 1)}):")
    report = sweep_simulation(
        TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1, inputs=[0, 1],
        seeds=seeds, task=KSetAgreementTask(1),
    )
    print(f"   {report.summary()}")
    print(f"   first violating seed: {report.first_violating_seed}")
    assert report.safety_violations == report.runs

    print("\n3. Protocol safety sweeps:")
    for protocol, inputs, task in (
        (RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1)),
        (CommitAdopt(3), [0, 1, 2], CommitAdoptTask()),
        (AveragingApprox(3, 2 ** -8), [0, 1, 0], None),
    ):
        report = sweep_protocol(protocol, inputs, seeds, task=task,
                                max_steps=100_000)
        print(f"   {protocol.name}: {report.summary()}")
        assert report.safety_violations == 0

    print("\n4. Appendix D ε-independence (single illustrative run):")
    for exponent in (8, 24):
        protocol = TruncatedProtocol(AveragingApprox(4, 2.0 ** -exponent), 2)
        outcome = run_approx_simulation(
            protocol, [0, 1], RoundRobinScheduler()
        )
        print(f"   ε=2^-{exponent}: simulator steps = "
              f"{outcome.max_steps_taken}")

    print("\ncampaign complete: all claims held.")


if __name__ == "__main__":
    main()
