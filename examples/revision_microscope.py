#!/usr/bin/env python
"""A microscope on revised pasts.

Runs the revisionist simulation on a workload engineered to force covering
simulators to insert hidden steps, then prints the reconstructed simulated
execution σ side by side with the real linearized execution — hidden steps
(the ones that were retroactively inserted into the past) are flagged.

Usage:  python examples/revision_microscope.py [seed]
"""

import sys

from repro.core import check_correspondence, run_simulation
from repro.core.simulation import SIM_BLOCK_TAG, SIM_REVISION_TAG
from repro.protocols import RotatingWrites
from repro.runtime import RandomScheduler


def find_interesting_seed(start: int = 0, limit: int = 200) -> int:
    """First seed whose run inserts at least one hidden step."""
    for seed in range(start, start + limit):
        outcome = run_one(seed)
        correspondence = check_correspondence(outcome)
        if correspondence.ok and correspondence.hidden_steps > 0:
            return seed
    raise SystemExit("no seed with hidden steps found in range")


def run_one(seed: int):
    protocol = RotatingWrites(n=7, m=3, rounds=8)
    return run_simulation(
        protocol, k=2, x=1, inputs=[5, 2, 8],
        scheduler=RandomScheduler(seed), max_steps=500_000,
    )


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else find_interesting_seed()
    outcome = run_one(seed)
    correspondence = check_correspondence(outcome)
    assert correspondence.ok, correspondence.violations

    print(f"seed {seed}: {len(correspondence.entries)} simulated steps, "
          f"{correspondence.hidden_steps} of them hidden (revised past)")
    print()
    print("reconstructed simulated execution σ:")
    print(f"{'#':>4}  {'proc':>5}  {'step':<22} origin")
    for position, entry in enumerate(correspondence.entries):
        if entry.kind == "scan":
            step = "scan"
        else:
            step = f"update({entry.component}, {entry.value!r})"
        origin = "HIDDEN (inserted)" if entry.hidden else (
            f"block-update {entry.bu_op_id}"
            + ("" if entry.bu_atomic else " [yield]")
            if entry.bu_op_id else "direct"
        )
        marker = ">>" if entry.hidden else "  "
        print(f"{marker}{position:>4}  p{entry.process:<4}  {step:<22} {origin}")

    print()
    revisions = outcome.system.trace.annotations(SIM_REVISION_TAG)
    blocks = outcome.system.trace.annotations(SIM_BLOCK_TAG)
    print(f"simulator activity: {len(blocks)} Block-Updates, "
          f"{len(revisions)} revisions")
    for event in revisions:
        info = event.payload
        print(f"   q{info['rank']} revised p{info['process_index']} from an "
              f"atomic Block-Update on components "
              f"{list(info['anchor_components'])} -> poised {info['pending']}")
    print()
    print(f"simulator decisions: {outcome.decisions} "
          f"(inputs were {list(outcome.setup.inputs)})")


if __name__ == "__main__":
    main()
