#!/usr/bin/env python
"""BG vs revisionist: the paper's central contrast, side by side.

The paper's Section 1: "in the BG simulation, different steps of simulated
processes can be performed by different simulators" — which is why BG can
never revise a simulated past — "in our simulation ... each process is
simulated by a single simulator", which is exactly what makes revision
possible.

This script runs both simulations on the same protocol and prints what
each can and cannot do:

  * BG: k+1 simulators cooperatively push ALL n simulated processes
    forward; a crashed simulator strands at most one of them; pasts are
    immutable and shared.
  * Revisionist: each simulator owns its processes outright; covering
    simulators insert hidden steps into their processes' pasts at views
    returned by atomic Block-Updates.

Usage:  python examples/two_simulations.py
"""

from repro.core import check_correspondence, run_bg_simulation, run_simulation
from repro.protocols import RotatingWrites
from repro.runtime import RandomScheduler


def bg_side():
    print("=" * 72)
    print("BG simulation [BG93]: 3 simulators push all 7 processes")
    print("=" * 72)
    protocol = RotatingWrites(7, 3, rounds=3)
    inputs = [5, 2, 8, 1, 9, 4, 6]
    outcome = run_bg_simulation(
        protocol, inputs, simulators=3,
        scheduler=RandomScheduler(11), max_steps=500_000,
    )
    print(f"   simulated processes completed: "
          f"{outcome.completed_processes}/{len(inputs)}")
    print(f"   outputs: {dict(sorted(outcome.simulated_outputs.items()))}")
    print(f"   safe-agreement registers spent by the reduction: "
          f"{outcome.system.total_registers()}")
    print("   every simulated step is shared work: any simulator may execute")
    print("   any process's next step — so no one may rewrite anyone's past.")


def revisionist_side():
    print()
    print("=" * 72)
    print("Revisionist simulation (this paper): 3 simulators OWN 7 processes")
    print("=" * 72)
    protocol = RotatingWrites(7, 3, rounds=8)
    inputs = [5, 2, 8]
    for seed in range(40):
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=inputs,
            scheduler=RandomScheduler(seed), max_steps=500_000,
        )
        correspondence = check_correspondence(outcome)
        assert correspondence.ok
        if correspondence.hidden_steps:
            break
    print(f"   (seed {seed}) simulator decisions: {outcome.decisions}")
    print(f"   Block-Updates: {outcome.block_update_count()}, "
          f"revisions: {outcome.revision_count()}")
    print(f"   hidden steps retroactively inserted into simulated pasts: "
          f"{correspondence.hidden_steps}")
    print("   ownership is what buys revision: only the owner simulates a")
    print("   process, so rewriting its history is invisible to the rest —")
    print("   the mechanism the space lower bound is built on.")


if __name__ == "__main__":
    bg_side()
    revisionist_side()
