#!/usr/bin/env python
"""Appendix A demo: derandomizing a solo-terminating protocol.

Takes a nondeterministic (randomized-style) protocol that can spin forever
under unlucky choices, converts it with the Theorem 4 shortest-solo-path
policy, and demonstrates:

  * the converted protocol uses the same registers,
  * it is obstruction-free (solo runs terminate from adversarial
    register contents, with a strictly decreasing potential), and
  * every execution of the converted protocol is an execution the original
    could have produced.

This is the paper's bridge from "lower bounds for obstruction-free
protocols" to "lower bounds for randomized wait-free protocols".

Usage:  python examples/derandomize_protocol.py
"""

import random

from repro.runtime import RandomScheduler, System
from repro.solo import (
    ConvertedMachine,
    SpinOrCommit,
    TokenRace,
    converted_body,
    nondet_body,
)
from repro.solo.conversion import make_registers, solo_run_machine


def show_original_can_spin():
    print("original nondeterministic machine (SpinOrCommit):")
    machine = SpinOrCommit()
    rng = random.Random(0)
    spins = 0
    state = machine.initial_state("v")
    for _ in range(20):
        step = rng.choice(machine.steps(state))
        if step[0] == "read" and state[0] == "start":
            spins += 1
        state = machine.transition(
            state, step, None if step[0] == "read" else step[2]
        )
        if machine.is_final(state):
            break
    print(f"   a random chooser spun {spins} times in 20 steps "
          f"(an unlucky chooser spins forever)")


def show_conversion():
    print("\nTheorem 4 conversion:")
    for machine, value in ((SpinOrCommit(), "v"), (TokenRace(), 1)):
        converted = ConvertedMachine(machine)
        output, measures, covered_at = solo_run_machine(converted, value)
        print(f"   {machine.name}: registers {machine.registers} -> "
              f"{converted.registers} (unchanged)")
        print(f"      solo run decided {output!r} in {len(measures)} steps; "
              f"potential {measures} (strictly decreasing from step "
              f"{covered_at})")


def show_adversarial_contents():
    print("\nobstruction-freedom from adversarial register contents:")
    machine = TokenRace()
    converted = ConvertedMachine(machine)
    for contents in ({0: 0, 1: 1}, {0: 1, 1: 0}, {0: None, 1: 1}):
        output, measures, _covered = solo_run_machine(
            converted, 1, initial_contents=dict(contents)
        )
        print(f"   contents {contents}: decided {output!r} "
              f"in {len(measures)} steps")


def show_concurrent_runs():
    print("\ntwo converted processes racing (obstruction-free, so random")
    print("schedules usually let one finish):")
    machine = TokenRace()
    converted = ConvertedMachine(machine)
    for seed in range(5):
        registers = make_registers(machine, prefix=f"R{seed}")
        system = System()
        for value in (0, 1):
            system.add_process(converted_body(converted, registers, value))
        result = system.run(RandomScheduler(seed), max_steps=2_000)
        print(f"   seed {seed}: outputs {result.outputs}")


if __name__ == "__main__":
    print(__doc__.split("Usage:")[0])
    show_original_can_spin()
    show_conversion()
    show_adversarial_contents()
    show_concurrent_runs()
