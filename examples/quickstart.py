#!/usr/bin/env python
"""Quickstart: the library in five minutes.

1. Run an obstruction-free consensus protocol on the shared-memory runtime.
2. Squeeze it below the Theorem 3 space bound and watch the model checker
   find the agreement violation the paper proves must exist.
3. Run the revisionist simulation itself and check the Lemma 28
   correspondence invariant.

Usage:  python examples/quickstart.py
"""

from repro.analysis import explore_protocol
from repro.core import (
    check_correspondence,
    kset_space_lower_bound,
    run_simulation,
)
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
    run_protocol,
)
from repro.runtime import RandomScheduler


def step_1_run_consensus():
    print("=" * 72)
    print("1. Obstruction-free consensus on n = 4 processes, n registers")
    print("=" * 72)
    protocol = RacingConsensus(4)
    inputs = [3, 1, 4, 1]
    system, result = run_protocol(
        protocol, inputs, RandomScheduler(seed=42), max_steps=50_000
    )
    print(f"   inputs:    {inputs}")
    print(f"   decisions: {result.outputs}")
    violations = KSetAgreementTask(1).check(inputs, result.outputs)
    print(f"   consensus safety: {'OK' if not violations else violations}")
    print(f"   registers used:   {system.total_registers()} "
          f"(lower bound for n=4: {kset_space_lower_bound(4, 1)})")


def step_2_falsify_below_the_bound():
    print()
    print("=" * 72)
    print("2. The same protocol squeezed to 1 register (bound says >= 3)")
    print("=" * 72)
    broken = TruncatedProtocol(RacingConsensus(3), registers=1)
    report = explore_protocol(
        broken, [0, 1, 2], KSetAgreementTask(1),
        max_configs=500_000, max_steps=40,
    )
    print(f"   explored {report.configurations} configurations")
    for violation in report.violations:
        print(f"   found: {violation}")
    print(f"   counterexample schedule: {report.counterexample}")


def step_3_revisionist_simulation():
    print()
    print("=" * 72)
    print("3. The revisionist simulation (k = 2, x = 1, m = 3)")
    print("=" * 72)
    protocol = RotatingWrites(n=7, m=3, rounds=6)
    outcome = run_simulation(
        protocol, k=2, x=1, inputs=[5, 2, 8],
        scheduler=RandomScheduler(seed=7), max_steps=400_000,
    )
    print(f"   simulator inputs:    {list(outcome.setup.inputs)}")
    print(f"   simulator decisions: {outcome.decisions}")
    print(f"   Block-Updates applied: {outcome.block_update_count()}, "
          f"past revisions: {outcome.revision_count()}")
    correspondence = check_correspondence(outcome)
    print(f"   Lemma 28 correspondence: "
          f"{'OK' if correspondence.ok else correspondence.violations}")
    print(f"   simulated execution length: {len(correspondence.entries)} "
          f"steps ({correspondence.hidden_steps} hidden)")


if __name__ == "__main__":
    step_1_run_consensus()
    step_2_falsify_below_the_bound()
    step_3_revisionist_simulation()
