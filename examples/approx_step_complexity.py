#!/usr/bin/env python
"""Appendix D in one table: why ε-approximate agreement needs ⌊n/2⌋+1
registers.

Left side: real approximate-agreement protocols take Θ(log(1/ε)) steps —
and Hoest–Shavit (Theorem 2) proves ≥ log₃(1/ε) is unavoidable for two
processes.  Right side: the two-simulator revisionist reduction built from
a protocol on m registers takes O(f(m)²) steps **independent of ε**.  As ε
shrinks, the simulation's (constant) step count crosses below the
Hoest–Shavit line — so a protocol with m ≤ ⌊n/2⌋ registers cannot exist.

Usage:  python examples/approx_step_complexity.py
"""

import math

from repro.core import run_approx_simulation
from repro.protocols import (
    ApproxAgreementTask,
    AveragingApprox,
    BisectionApprox,
    TruncatedProtocol,
    run_protocol,
)
from repro.runtime import RoundRobinScheduler


def protocol_steps(protocol, inputs):
    system, result = run_protocol(
        protocol, inputs, RoundRobinScheduler(), max_steps=100_000
    )
    assert result.completed
    return max(process.steps_taken for process in system.processes.values())


def simulation_steps(m, eps):
    protocol = TruncatedProtocol(AveragingApprox(2 * m, eps), m)
    outcome = run_approx_simulation(
        protocol, [0, 1], RoundRobinScheduler()
    )
    assert outcome.all_decided
    return outcome.max_steps_taken


def main():
    print(f"{'ε':>12} | {'log3(1/ε)':>10} | {'bisection':>10} "
          f"{'averaging':>10} | {'simulation m=2':>14} {'m=3':>6}")
    print("-" * 75)
    for exponent in (2, 4, 8, 12, 16, 20, 30, 40):
        eps = 2.0 ** -exponent
        hoest_shavit = math.log(1 / eps, 3)
        bisection = protocol_steps(BisectionApprox(eps), [0, 1])
        averaging = protocol_steps(AveragingApprox(2, eps), [0, 1])
        sim2 = simulation_steps(2, eps)
        sim3 = simulation_steps(3, eps)
        cross = "  <-- simulation beats the lower bound" \
            if sim2 < hoest_shavit else ""
        print(f"{f'2^-{exponent}':>12} | {hoest_shavit:>10.1f} | "
              f"{bisection:>10} {averaging:>10} | {sim2:>14} {sim3:>6}{cross}")
    print()
    print("Protocol steps grow with log(1/ε); simulation steps depend only")
    print("on m.  Once the simulation column is below the log₃(1/ε) column,")
    print("a protocol with that m would contradict Theorem 2: hence any")
    print("obstruction-free ε-approximate agreement protocol (small ε) needs")
    print("at least ⌊n/2⌋ + 1 registers.")

    # Sanity: the simulation output really is valid approximate agreement.
    eps = 2.0 ** -20
    protocol = TruncatedProtocol(AveragingApprox(4, eps), 2)
    outcome = run_approx_simulation(protocol, [0, 1], RoundRobinScheduler())
    task = ApproxAgreementTask(1.0)  # simulators only promise validity here
    violations = task.check([0, 1], outcome.decisions)
    print(f"\nsimulator outputs {outcome.decisions} "
          f"(validity: {'OK' if not violations else violations})")


if __name__ == "__main__":
    main()
