#!/usr/bin/env python
"""Theorem 3 as an experiment: run the reduction against protocols that
"use too few registers" and watch it surface the violations whose
impossibility the theorem rests on.

For each register count m below the bound, the script
  * instantiates racing consensus for n = (k+1-x)m + x processes truncated
    to m registers,
  * runs the revisionist simulation among k+1 simulators with distinct
    inputs under many schedules, and
  * reports what broke: k-agreement, validity, or liveness.

If the truncated protocol were a correct x-obstruction-free k-set
agreement protocol, the simulation would be a deterministic wait-free k-set
agreement protocol for k+1 processes — impossible by
Borowsky-Gafni/Herlihy-Shavit/Saks-Zaharoglou.  So something must break,
and this script shows you exactly what does.

Usage:  python examples/falsify_underprovisioned_consensus.py
"""

from collections import Counter

from repro.core import (
    check_correspondence,
    kset_space_lower_bound,
    run_simulation,
    simulated_process_count,
)
from repro.protocols import KSetAgreementTask, RacingConsensus, TruncatedProtocol
from repro.runtime import RandomScheduler

SEEDS = range(20)


def falsify(k: int, x: int, m: int) -> Counter:
    n = simulated_process_count(m, k, x)
    bound = kset_space_lower_bound(n, k, x)
    assert m < bound, "this demo only makes sense below the bound"
    task = KSetAgreementTask(k)
    tally: Counter = Counter()
    print(f"k={k}, x={x}: simulating n={n} processes on m={m} registers "
          f"(Theorem 3 bound: {bound})")
    for seed in SEEDS:
        protocol = TruncatedProtocol(RacingConsensus(n), m)
        outcome = run_simulation(
            protocol, k=k, x=x, inputs=list(range(k + 1)),
            scheduler=RandomScheduler(seed), max_steps=300_000,
        )
        violations = outcome.task_violations(task)
        if violations:
            kind = "validity" if any("validity" in v for v in violations) \
                else "agreement"
            tally[f"safety:{kind}"] += 1
        elif outcome.result.diverged:
            tally["liveness:diverged"] += 1
        else:
            tally["no violation observed"] += 1
        # The machinery itself stays faithful even on broken protocols:
        correspondence = check_correspondence(outcome)
        if not correspondence.ok:
            tally["SIMULATION BUG"] += 1
    return tally


def main():
    print(__doc__.split("Usage:")[0])
    for k, x, m in [(1, 1, 1), (2, 1, 1), (2, 1, 2)]:
        tally = falsify(k, x, m)
        for kind, count in sorted(tally.items()):
            print(f"    {kind:>24}: {count}/{len(list(SEEDS))} runs")
        print()
    print("Every safety hit above is a concrete execution in which the")
    print("'impossible' protocol misbehaves — the constructive content of")
    print("the lower bound.  Runs labelled 'no violation observed' are not")
    print("counterevidence: the theorem promises SOME bad execution exists,")
    print("and the closer m sits to the bound, the rarer those executions")
    print("are under random schedules (see benchmarks/bench_falsifier.py")
    print("for the systematic sweep).")


if __name__ == "__main__":
    main()
